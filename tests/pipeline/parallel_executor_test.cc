#include "pipeline/parallel_executor.h"

#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "core/failpoint.h"
#include "core/thread_pool.h"
#include "gtest/gtest.h"
#include "pipeline/experiment.h"
#include "pipeline/trainer.h"

namespace darec::pipeline {
namespace {

namespace fs = std::filesystem;

class ParallelExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/parallel_executor_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    core::FailPoint::DisarmAll();
    core::ThreadPool::SetGlobalThreads(core::ThreadPool::DefaultThreads());
    fs::remove_all(dir_);
  }

  std::string dir_;
};

ExperimentSpec TinySpec(const std::string& backbone, const std::string& variant) {
  ExperimentSpec spec;
  spec.dataset = "tiny";
  spec.backbone = backbone;
  spec.variant = variant;
  spec.backbone_options.embedding_dim = 16;
  spec.backbone_options.num_layers = 2;
  spec.backbone_options.ssl_batch = 64;
  spec.train_options.epochs = 3;
  spec.train_options.batch_size = 256;
  spec.llm_options.output_dim = 24;
  spec.llm_options.hidden_dim = 32;
  spec.rlmrec_options.sample_size = 64;
  spec.darec_options.sample_size = 64;
  spec.darec_options.uniformity_sample = 32;
  spec.darec_options.projection_dim = 16;
  spec.darec_options.hidden_dim = 24;
  spec.darec_options.kmeans_iterations = 5;
  return spec;
}

void ExpectBitIdentical(const tensor::Matrix& a, const tensor::Matrix& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i << " differs";
  }
}

/// The executor contract: at a fixed grad_accum, the worker count is pure
/// execution policy — every loss, metric, and parameter bit is identical
/// whether the group's batches run serially on one thread or concurrently
/// on eight.
TEST_F(ParallelExecutorTest, WorkerCountNeverChangesResultsBitwise) {
  for (const std::string variant : {"baseline", "darec"}) {
    SCOPED_TRACE("variant=" + variant);
    ExperimentSpec spec = TinySpec("lightgcn", variant);
    spec.train_options.grad_accum = 4;

    spec.train_options.workers = 1;
    auto reference = Experiment::Create(spec);
    ASSERT_TRUE(reference.ok());
    const TrainResult expected = (*reference)->Run();
    ASSERT_FALSE(expected.epoch_losses.empty());

    for (int workers : {2, 4, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      spec.train_options.workers = workers;
      auto run = Experiment::Create(spec);
      ASSERT_TRUE(run.ok());
      const TrainResult got = (*run)->Run();

      ASSERT_EQ(got.epoch_losses.size(), expected.epoch_losses.size());
      for (size_t i = 0; i < expected.epoch_losses.size(); ++i) {
        ASSERT_EQ(got.epoch_losses[i], expected.epoch_losses[i])
            << "loss of epoch " << i + 1 << " differs";
      }
      ExpectBitIdentical(got.final_embeddings, expected.final_embeddings);
      ASSERT_EQ(got.test_metrics.recall, expected.test_metrics.recall);
      ASSERT_EQ(got.test_metrics.ndcg, expected.test_metrics.ndcg);
    }
  }
}

/// grad_accum without extra workers is the same super-step semantics run on
/// one thread — the degenerate case the parity tests compare against — and
/// must also round-trip through the ordinary Trainer facade.
TEST_F(ParallelExecutorTest, GradAccumAloneUsesSuperStepSemantics) {
  ExperimentSpec spec = TinySpec("lightgcn", "darec");
  spec.train_options.workers = 1;
  spec.train_options.grad_accum = 2;
  auto accum = Experiment::Create(spec);
  ASSERT_TRUE(accum.ok());
  const TrainResult grouped = (*accum)->Run();

  // One mean-gradient update per group is a different optimization
  // trajectory than one update per batch; if these ever collide bitwise the
  // executor is silently falling back to the serial path.
  ExperimentSpec serial_spec = spec;
  serial_spec.train_options.grad_accum = 1;
  auto serial = Experiment::Create(serial_spec);
  ASSERT_TRUE(serial.ok());
  const TrainResult per_batch = (*serial)->Run();

  ASSERT_EQ(grouped.epoch_losses.size(), per_batch.epoch_losses.size());
  EXPECT_NE(grouped.epoch_losses.back(), per_batch.epoch_losses.back());
  EXPECT_TRUE(std::isfinite(grouped.epoch_losses.back()));
}

/// An exception thrown inside a worker (here: the aligner) must surface on
/// the calling thread as that same exception, not deadlock or crash.
class ThrowingAligner final : public align::Aligner {
 public:
  std::string name() const override { return "throwing"; }
  tensor::Variable Loss(const tensor::Variable&, core::Rng&) override {
    throw std::runtime_error("aligner boom");
  }
  std::vector<tensor::Variable> Params() override { return {}; }
};

TEST_F(ParallelExecutorTest, WorkerExceptionPropagatesToCaller) {
  ExperimentSpec spec = TinySpec("lightgcn", "baseline");
  auto experiment = Experiment::Create(spec);
  ASSERT_TRUE(experiment.ok());

  ThrowingAligner aligner;
  TrainOptions options = spec.train_options;
  options.workers = 2;
  options.grad_accum = 2;
  Trainer trainer(&(*experiment)->backbone(), &aligner,
                  &(*experiment)->dataset(), options);
  EXPECT_THROW(trainer.RunEpoch(), std::runtime_error);
}

/// Divergence guard: a non-finite loss in any slot abandons the whole
/// super-step before the Adam update — parameters and optimizer state are
/// untouched, exactly like the serial path's abort-before-apply.
TEST_F(ParallelExecutorTest, NonFiniteLossAbortsSuperStepBeforeAdam) {
  ExperimentSpec spec = TinySpec("lightgcn", "darec");
  spec.train_options.workers = 4;
  spec.train_options.grad_accum = 4;
  auto experiment = Experiment::Create(spec);
  ASSERT_TRUE(experiment.ok());
  Trainer& trainer = (*experiment)->trainer();

  const tensor::Matrix before = trainer.CurrentEmbeddings();
  core::FailPoint::Arm("trainer.nan_loss");
  const double loss = trainer.RunEpoch();
  core::FailPoint::DisarmAll();

  EXPECT_TRUE(std::isnan(loss));
  EXPECT_EQ(trainer.optimizer().step_count(), 0);
  ExpectBitIdentical(trainer.CurrentEmbeddings(), before);

  // The trainer is not poisoned: once the fail point is gone, the same
  // instance trains normally.
  EXPECT_TRUE(std::isfinite(trainer.RunEpoch()));
  EXPECT_GT(trainer.optimizer().step_count(), 0);
}

/// Checkpoint/resume is worker-count independent: a run checkpointed under
/// one worker count and resumed under another finishes bit-identically to
/// an uninterrupted run at a third.
TEST_F(ParallelExecutorTest, ResumeAcrossWorkerCountsMatchesStraightRun) {
  ExperimentSpec spec = TinySpec("lightgcn", "darec");
  spec.train_options.epochs = 6;
  spec.train_options.eval_every = 2;
  spec.train_options.patience = 10;
  spec.train_options.grad_accum = 4;

  spec.train_options.workers = 4;
  auto straight = Experiment::Create(spec);
  ASSERT_TRUE(straight.ok());
  const TrainResult expected = (*straight)->Run();

  ExperimentSpec head_spec = spec;
  head_spec.train_options.workers = 1;
  head_spec.train_options.epochs = 3;
  head_spec.train_options.checkpoint_dir = dir_;
  head_spec.train_options.checkpoint_every = 1;
  auto head = Experiment::Create(head_spec);
  ASSERT_TRUE(head.ok());
  (*head)->Run();

  ExperimentSpec tail_spec = spec;
  tail_spec.train_options.workers = 8;
  tail_spec.train_options.checkpoint_dir = dir_;
  tail_spec.train_options.checkpoint_every = 1;
  auto tail = Experiment::Create(tail_spec);
  ASSERT_TRUE(tail.ok());
  ASSERT_TRUE((*tail)->trainer().RestoreCheckpoint().ok());
  EXPECT_EQ((*tail)->trainer().epochs_completed(), 3);
  const TrainResult resumed = (*tail)->Run();

  ASSERT_EQ(resumed.epoch_losses.size(), expected.epoch_losses.size());
  for (size_t i = 0; i < expected.epoch_losses.size(); ++i) {
    ASSERT_EQ(resumed.epoch_losses[i], expected.epoch_losses[i])
        << "loss of epoch " << i + 1 << " differs";
  }
  ExpectBitIdentical(resumed.final_embeddings, expected.final_embeddings);
  ASSERT_EQ(resumed.test_metrics.recall, expected.test_metrics.recall);
}

/// Backbones that cache per-step state inside Forward (NCL's layer outputs)
/// cannot run concurrent slots; the executor refuses instead of racing.
TEST_F(ParallelExecutorTest, StatefulBackboneRejectsConcurrentWorkers) {
  ExperimentSpec spec = TinySpec("ncl", "baseline");
  spec.train_options.workers = 2;
  EXPECT_DEATH(
      {
        auto experiment = Experiment::Create(spec);
        if (experiment.ok()) (*experiment)->Run();
      },
      "cannot run");
  // The same backbone still accepts grad accumulation on one worker.
  spec.train_options.workers = 1;
  spec.train_options.grad_accum = 2;
  spec.train_options.epochs = 1;
  auto serial = Experiment::Create(spec);
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(std::isfinite((*serial)->Run().epoch_losses.back()));
}

}  // namespace
}  // namespace darec::pipeline
