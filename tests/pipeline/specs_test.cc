#include "pipeline/specs.h"

#include "gtest/gtest.h"

namespace darec::pipeline {
namespace {

TEST(CalibratedSpecTest, CarriesNames) {
  ExperimentSpec spec = CalibratedSpec("yelp-small", "sgl", "darec");
  EXPECT_EQ(spec.dataset, "yelp-small");
  EXPECT_EQ(spec.backbone, "sgl");
  EXPECT_EQ(spec.variant, "darec");
}

TEST(CalibratedSpecTest, PaperAlignedTrainingSetup) {
  ExperimentSpec spec = CalibratedSpec("amazon-book-small", "lightgcn", "baseline");
  // Paper: Adam lr 1e-3; our CPU-scale counterpart uses d=32, 3 layers.
  EXPECT_FLOAT_EQ(spec.train_options.learning_rate, 1e-3f);
  EXPECT_EQ(spec.backbone_options.embedding_dim, 32);
  EXPECT_EQ(spec.backbone_options.num_layers, 3);
  // λ inside the paper's [0.1, 1.0] plateau; K = 4 in the paper's [4, 8].
  EXPECT_GE(spec.darec_options.lambda, 0.1f);
  EXPECT_LE(spec.darec_options.lambda, 1.0f);
  EXPECT_GE(spec.darec_options.num_clusters, 4);
  EXPECT_LE(spec.darec_options.num_clusters, 8);
}

TEST(ApplyConfigOverridesTest, OverridesSelectedKeys) {
  ExperimentSpec spec = CalibratedSpec("amazon-book-small", "lightgcn", "darec");
  auto config = core::Config::FromArgs(
      {"epochs=7", "lambda=2.5", "k=10", "dim=16", "dataset=tiny", "n_hat=64"});
  ASSERT_TRUE(config.ok());
  ApplyConfigOverrides(*config, &spec);
  EXPECT_EQ(spec.train_options.epochs, 7);
  EXPECT_FLOAT_EQ(spec.darec_options.lambda, 2.5f);
  EXPECT_EQ(spec.darec_options.num_clusters, 10);
  EXPECT_EQ(spec.backbone_options.embedding_dim, 16);
  EXPECT_EQ(spec.dataset, "tiny");
  EXPECT_EQ(spec.darec_options.sample_size, 64);
}

TEST(ApplyConfigOverridesTest, UnknownKeysIgnoredDefaultsKept) {
  ExperimentSpec spec = CalibratedSpec("amazon-book-small", "lightgcn", "darec");
  ExperimentSpec before = spec;
  auto config = core::Config::FromArgs({"totally_unknown=1"});
  ASSERT_TRUE(config.ok());
  ApplyConfigOverrides(*config, &spec);
  EXPECT_EQ(spec.train_options.epochs, before.train_options.epochs);
  EXPECT_FLOAT_EQ(spec.darec_options.lambda, before.darec_options.lambda);
  EXPECT_EQ(spec.dataset, before.dataset);
}

TEST(ApplyConfigOverridesTest, CheckpointAndResumeKnobs) {
  ExperimentSpec spec = CalibratedSpec("amazon-book-small", "lightgcn", "darec");
  auto config = core::Config::FromArgs({"checkpoint_dir=/tmp/sweep",
                                        "checkpoint_every=5", "keep_checkpoints=7",
                                        "resume=1", "eval_every=2", "patience=4"});
  ASSERT_TRUE(config.ok());
  ApplyConfigOverrides(*config, &spec);
  EXPECT_EQ(spec.train_options.checkpoint_dir, "/tmp/sweep");
  EXPECT_EQ(spec.train_options.checkpoint_every, 5);
  EXPECT_EQ(spec.train_options.keep_last_checkpoints, 7);
  EXPECT_TRUE(spec.train_options.resume);
  EXPECT_EQ(spec.train_options.eval_every, 2);
  EXPECT_EQ(spec.train_options.patience, 4);
}

TEST(ApplyConfigOverridesTest, LlmKnobs) {
  ExperimentSpec spec = CalibratedSpec("amazon-book-small", "lightgcn", "rlmrec-con");
  auto config = core::Config::FromArgs(
      {"llm_specific=3.5", "llm_noise=0.2", "rlmrec_temperature=0.7"});
  ASSERT_TRUE(config.ok());
  ApplyConfigOverrides(*config, &spec);
  EXPECT_DOUBLE_EQ(spec.llm_options.specific_scale, 3.5);
  EXPECT_DOUBLE_EQ(spec.llm_options.noise_stddev, 0.2);
  EXPECT_FLOAT_EQ(spec.rlmrec_options.temperature, 0.7f);
}

TEST(CalibratedSpecTest, RunnableEndToEnd) {
  ExperimentSpec spec = CalibratedSpec("tiny", "lightgcn", "darec");
  spec.train_options.epochs = 1;
  spec.darec_options.sample_size = 32;
  spec.darec_options.uniformity_sample = 16;
  auto result = RunExperiment(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epoch_losses.size(), 1u);
}

}  // namespace
}  // namespace darec::pipeline
