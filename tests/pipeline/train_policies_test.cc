#include "pipeline/policies.h"

#include <cmath>
#include <filesystem>
#include <string>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "gtest/gtest.h"
#include "pipeline/experiment.h"
#include "pipeline/trainer.h"
#include "tensor/matrix.h"

namespace darec::pipeline {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- EarlyStopping

TEST(EarlyStoppingTest, DisabledWhenEvalEveryNonPositive) {
  EarlyStopping off(/*eval_every=*/0, /*patience=*/3, /*eval_k=*/20);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.ShouldEvaluate(1));
  EXPECT_FALSE(off.ShouldEvaluate(100));

  EarlyStopping negative(/*eval_every=*/-2, /*patience=*/3, /*eval_k=*/20);
  EXPECT_FALSE(negative.enabled());
}

TEST(EarlyStoppingTest, EvaluatesOnCadence) {
  EarlyStopping policy(/*eval_every=*/3, /*patience=*/2, /*eval_k=*/20);
  ASSERT_TRUE(policy.enabled());
  EXPECT_FALSE(policy.ShouldEvaluate(1));
  EXPECT_FALSE(policy.ShouldEvaluate(2));
  EXPECT_TRUE(policy.ShouldEvaluate(3));
  EXPECT_FALSE(policy.ShouldEvaluate(4));
  EXPECT_TRUE(policy.ShouldEvaluate(6));
}

TEST(EarlyStoppingTest, PatienceExhaustionStops) {
  EarlyStopping policy(/*eval_every=*/1, /*patience=*/2, /*eval_k=*/20);
  tensor::Matrix snapshot = tensor::Matrix::Full(2, 2, 1.0f);

  EarlyStopping::Decision first = policy.Observe(0.5, snapshot);
  EXPECT_TRUE(first.improved);
  EXPECT_FALSE(first.stop);
  EXPECT_EQ(policy.best_validation(), 0.5);

  // Two non-improving measurements exhaust patience=2.
  EarlyStopping::Decision second = policy.Observe(0.4, snapshot);
  EXPECT_FALSE(second.improved);
  EXPECT_FALSE(second.stop);
  EXPECT_EQ(policy.evals_since_improvement(), 1);

  EarlyStopping::Decision third = policy.Observe(0.5, snapshot);  // Tie: no improve.
  EXPECT_FALSE(third.improved);
  EXPECT_TRUE(third.stop);
}

TEST(EarlyStoppingTest, ImprovementResetsPatienceAndKeepsBestSnapshot) {
  EarlyStopping policy(/*eval_every=*/1, /*patience=*/2, /*eval_k=*/20);

  policy.Observe(0.3, tensor::Matrix::Full(2, 2, 3.0f));
  policy.Observe(0.2, tensor::Matrix::Full(2, 2, 9.0f));  // Worse: not kept.
  EXPECT_EQ(policy.evals_since_improvement(), 1);

  EarlyStopping::Decision better = policy.Observe(0.6, tensor::Matrix::Full(2, 2, 7.0f));
  EXPECT_TRUE(better.improved);
  EXPECT_EQ(policy.evals_since_improvement(), 0);
  ASSERT_TRUE(policy.has_best());
  EXPECT_EQ(policy.best_embeddings().data()[0], 7.0f);
  EXPECT_EQ(policy.best_validation(), 0.6);
}

TEST(EarlyStoppingTest, StateRoundTripsThroughBytes) {
  EarlyStopping policy(/*eval_every=*/2, /*patience=*/5, /*eval_k=*/10);
  policy.Observe(0.42, tensor::Matrix::Full(3, 4, 1.5f));
  policy.Observe(0.41, tensor::Matrix::Full(3, 4, 8.0f));

  ckpt::ByteWriter writer;
  policy.AppendState(writer);

  ckpt::ByteReader reader(writer.str());
  auto state = EarlyStopping::ParseState(reader);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(reader.AtEnd());

  EarlyStopping fresh(/*eval_every=*/2, /*patience=*/5, /*eval_k=*/10);
  fresh.Restore(*std::move(state));
  EXPECT_EQ(fresh.best_validation(), 0.42);
  EXPECT_EQ(fresh.evals_since_improvement(), 1);
  ASSERT_TRUE(fresh.has_best());
  EXPECT_EQ(fresh.best_embeddings().rows(), 3);
  EXPECT_EQ(fresh.best_embeddings().data()[0], 1.5f);
}

TEST(EarlyStoppingTest, ParseRejectsTruncatedState) {
  EarlyStopping policy(/*eval_every=*/1, /*patience=*/3, /*eval_k=*/20);
  policy.Observe(0.9, tensor::Matrix::Full(2, 2, 1.0f));

  ckpt::ByteWriter writer;
  policy.AppendState(writer);
  const std::string bytes = writer.str();

  ckpt::ByteReader reader(std::string_view(bytes).substr(0, bytes.size() / 2));
  EXPECT_FALSE(EarlyStopping::ParseState(reader).ok());
}

// -------------------------------------------------------------- CheckpointPolicy

TEST(CheckpointPolicyTest, DisabledWithoutManagerOrCadence) {
  CheckpointPolicy no_manager(/*manager_present=*/false, /*every=*/1);
  EXPECT_FALSE(no_manager.enabled());
  EXPECT_FALSE(no_manager.ShouldSave(1));
  EXPECT_FALSE(no_manager.ShouldSaveInitial(/*any_checkpoint_exists=*/false));

  CheckpointPolicy no_cadence(/*manager_present=*/true, /*every=*/0);
  EXPECT_FALSE(no_cadence.enabled());
  EXPECT_FALSE(no_cadence.ShouldSave(1));
}

TEST(CheckpointPolicyTest, SavesOnCadence) {
  CheckpointPolicy policy(/*manager_present=*/true, /*every=*/2);
  ASSERT_TRUE(policy.enabled());
  EXPECT_FALSE(policy.ShouldSave(1));
  EXPECT_TRUE(policy.ShouldSave(2));
  EXPECT_FALSE(policy.ShouldSave(3));
  EXPECT_TRUE(policy.ShouldSave(4));
}

TEST(CheckpointPolicyTest, InitialSaveOnlyIntoEmptyDirectory) {
  CheckpointPolicy policy(/*manager_present=*/true, /*every=*/1);
  EXPECT_TRUE(policy.ShouldSaveInitial(/*any_checkpoint_exists=*/false));
  EXPECT_FALSE(policy.ShouldSaveInitial(/*any_checkpoint_exists=*/true));
}

// -------------------------------------------------------------- DivergenceGuard

TEST(DivergenceGuardTest, BudgetAndBackoffEscalate) {
  DivergenceGuard guard(/*lr_backoff=*/0.5f, /*max_retries=*/3);
  ASSERT_TRUE(guard.CanRetry());

  EXPECT_FLOAT_EQ(guard.RegisterRetry(), 0.5f);
  EXPECT_FLOAT_EQ(guard.RegisterRetry(), 0.25f);
  EXPECT_FLOAT_EQ(guard.RegisterRetry(), 0.125f);
  EXPECT_EQ(guard.retries(), 3);
  EXPECT_FALSE(guard.CanRetry());
}

TEST(DivergenceGuardTest, ZeroBudgetNeverRetries) {
  DivergenceGuard guard(/*lr_backoff=*/0.5f, /*max_retries=*/0);
  EXPECT_FALSE(guard.CanRetry());
}

// ------------------------------------------------------- Rotation (keep_last)

ExperimentSpec RotationSpec(const std::string& dir) {
  ExperimentSpec spec;
  spec.dataset = "tiny";
  spec.backbone = "lightgcn";
  spec.variant = "baseline";
  spec.backbone_options.embedding_dim = 16;
  spec.backbone_options.num_layers = 2;
  spec.backbone_options.ssl_batch = 64;
  spec.train_options.epochs = 5;
  spec.train_options.batch_size = 256;
  spec.train_options.checkpoint_dir = dir;
  spec.train_options.checkpoint_every = 1;
  spec.train_options.keep_last_checkpoints = 2;
  return spec;
}

TEST(CheckpointRotationTest, KeepLastBoundsDirectoryAndKeepsNewest) {
  const std::string dir = ::testing::TempDir() + "/train_policies_rotation";
  fs::remove_all(dir);

  auto experiment = Experiment::Create(RotationSpec(dir));
  ASSERT_TRUE(experiment.ok());
  (*experiment)->Run();

  ckpt::CheckpointManagerOptions copts;
  copts.dir = dir;
  ckpt::CheckpointManager manager(copts);
  std::vector<ckpt::CheckpointEntry> entries = manager.List();
  // 6 commits happened (initial + 5 epochs); only the 2 newest survive.
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].step, 4);
  EXPECT_EQ(entries[1].step, 5);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace darec::pipeline
