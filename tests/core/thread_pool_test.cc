#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace darec::core {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 10'001;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(0, n, 7, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ChunkBoundariesFollowGrain) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelFor(5, 47, 10, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back({b, e});
  });
  ASSERT_EQ(chunks.size(), 5u);  // ceil(42 / 10)
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 5);
  EXPECT_EQ(chunks.back().second, 47);
  for (size_t c = 1; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].first, chunks[c - 1].second);
  }
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(3, 3, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(5, 2, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, NonPositiveGrainIsClampedToOne) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 0, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  bool same_thread = true;
  pool.ParallelFor(0, 1000, 10, [&](int64_t, int64_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  auto throwing = [&] {
    pool.ParallelFor(0, 1000, 10, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        if (i == 537) throw std::runtime_error("boom");
      }
    });
  };
  EXPECT_THROW(throwing(), std::runtime_error);
  // The pool must survive a failed loop and run subsequent work normally.
  std::atomic<int64_t> count{0};
  pool.ParallelFor(0, 500, 9, [&](int64_t b, int64_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 16, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Inner loop from a pool thread must run inline rather than waiting
      // on the (busy) pool.
      pool.ParallelFor(0, 100, 10, [&](int64_t ib, int64_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 100);
}

TEST(ThreadPoolTest, NestedFreeFunctionParallelFor) {
  ThreadPool::SetGlobalThreads(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      ParallelFor(0, 50, 5, [&](int64_t ib, int64_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ThreadPoolTest, SetGlobalThreadsReplacesPool) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsHonorsEnvVar) {
  setenv("DAREC_NUM_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 5);
  unsetenv("DAREC_NUM_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolDeathTest, DefaultThreadsRejectsGarbageEnvVar) {
  // A typo silently falling back to the hardware count would change run
  // timings with no visible sign, so garbage is a hard error.
  setenv("DAREC_NUM_THREADS", "not-a-number", 1);
  EXPECT_DEATH(ThreadPool::DefaultThreads(), "DAREC_NUM_THREADS=not-a-number");
  setenv("DAREC_NUM_THREADS", "-2", 1);
  EXPECT_DEATH(ThreadPool::DefaultThreads(), "expected an integer");
  setenv("DAREC_NUM_THREADS", "8x", 1);
  EXPECT_DEATH(ThreadPool::DefaultThreads(), "expected an integer");
  setenv("DAREC_NUM_THREADS", "0", 1);
  EXPECT_DEATH(ThreadPool::DefaultThreads(), "expected an integer");
  unsetenv("DAREC_NUM_THREADS");
}

TEST(ThreadPoolTest, ManySmallLoopsStress) {
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 64, 3, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2);
  }
}

}  // namespace
}  // namespace darec::core
