#include "core/status.h"

#include "core/statusor.h"
#include "gtest/gtest.h"

namespace darec::core {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad K");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad K");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad K");
}

TEST(StatusTest, FactoriesMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Pipeline(int x) {
  DARE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Pipeline(1).ok());
  EXPECT_EQ(Pipeline(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  DARE_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(StatusOrTest, AssignOrReturnChains) {
  StatusOr<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

}  // namespace
}  // namespace darec::core
