#include "core/cpu_features.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/simd/kernels.h"

namespace darec::core {
namespace {

TEST(CpuFeaturesTest, ParseSimdLevelAcceptsTheThreeTierNames) {
  auto scalar = ParseSimdLevel("scalar");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*scalar, SimdLevel::kScalar);
  auto avx2 = ParseSimdLevel("avx2");
  ASSERT_TRUE(avx2.ok());
  EXPECT_EQ(*avx2, SimdLevel::kAvx2);
  auto avx512 = ParseSimdLevel("avx512");
  ASSERT_TRUE(avx512.ok());
  EXPECT_EQ(*avx512, SimdLevel::kAvx512);
}

TEST(CpuFeaturesTest, ParseSimdLevelRejectsGarbage) {
  for (const char* bad : {"", "AVX2", "avx-512", "sse", "scalar ", "3"}) {
    auto parsed = ParseSimdLevel(bad);
    EXPECT_FALSE(parsed.ok()) << "'" << bad << "' should not parse";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CpuFeaturesTest, LevelNamesRoundTrip) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    auto parsed = ParseSimdLevel(SimdLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
}

TEST(CpuFeaturesTest, SetSimdLevelForTestRedirectsDispatch) {
  const SimdLevel original = ActiveSimdLevel();
  SetSimdLevelForTest(SimdLevel::kScalar);
  EXPECT_STREQ(tensor::simd::Kernels().name, "scalar");
  if (HardwareSimdLevel() >= SimdLevel::kAvx2) {
    SetSimdLevelForTest(SimdLevel::kAvx2);
    EXPECT_STREQ(tensor::simd::Kernels().name, "avx2");
  }
  SetSimdLevelForTest(original);
}

TEST(CpuFeaturesDeathTest, EnvOverrideRejectsGarbage) {
  setenv("DAREC_SIMD", "fastest", 1);
  EXPECT_DEATH(SimdLevelFromEnvOrDie(), "DAREC_SIMD");
  setenv("DAREC_SIMD", "avx1024", 1);
  EXPECT_DEATH(SimdLevelFromEnvOrDie(), "DAREC_SIMD");
  unsetenv("DAREC_SIMD");
}

TEST(CpuFeaturesTest, EnvOverrideHonored) {
  setenv("DAREC_SIMD", "scalar", 1);
  EXPECT_EQ(SimdLevelFromEnvOrDie(), SimdLevel::kScalar);
  unsetenv("DAREC_SIMD");
  EXPECT_EQ(SimdLevelFromEnvOrDie(), HardwareSimdLevel());
}

/// Every compiled tier must be bitwise equal to the scalar tier on shapes
/// chosen to exercise full vector bodies, ragged tails, and sub-vector
/// remainders (primes, one-past-tile, tiny).
class SimdParityTest : public ::testing::Test {
 protected:
  static std::vector<float> RandomVec(int64_t n, Rng& rng) {
    std::vector<float> v(n);
    // Mixed magnitudes and signs so reassociation/contraction would show.
    for (int64_t i = 0; i < n; ++i) {
      v[i] = rng.Uniform(-1.0f, 1.0f) * (1.0f + 1000.0f * rng.Uniform(0.0f, 1.0f));
    }
    return v;
  }

  static std::vector<SimdLevel> CompiledLevelsAboveScalar() {
    std::vector<SimdLevel> levels;
    if (HardwareSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
    if (HardwareSimdLevel() >= SimdLevel::kAvx512)
      levels.push_back(SimdLevel::kAvx512);
    return levels;
  }
};

TEST_F(SimdParityTest, MatMulRowRangeMatchesScalarBitwise) {
  const tensor::simd::KernelTable& scalar =
      tensor::simd::KernelsFor(SimdLevel::kScalar);
  Rng rng(20240807);
  // (m, k, n) triples: primes, tile-exact, one element, tile+1.
  const int64_t shapes[][3] = {{7, 13, 31}, {4, 8, 32},  {1, 1, 1},
                               {5, 32, 33}, {9, 17, 64}, {3, 64, 37}};
  for (const auto& shape : shapes) {
    const int64_t m = shape[0], k = shape[1], n = shape[2];
    const std::vector<float> a = RandomVec(m * k, rng);
    const std::vector<float> b = RandomVec(k * n, rng);
    std::vector<float> expected(m * n, 0.5f);
    scalar.matmul_row_range(a.data(), b.data(), expected.data(), k, n, 0, m);
    for (SimdLevel level : CompiledLevelsAboveScalar()) {
      const tensor::simd::KernelTable& kt = tensor::simd::KernelsFor(level);
      std::vector<float> got(m * n, 0.5f);
      kt.matmul_row_range(a.data(), b.data(), got.data(), k, n, 0, m);
      for (int64_t i = 0; i < m * n; ++i) {
        ASSERT_EQ(got[i], expected[i])
            << kt.name << " " << m << "x" << k << "x" << n << " elem " << i;
      }
    }
  }
}

TEST_F(SimdParityTest, ElementwiseKernelsMatchScalarBitwise) {
  const tensor::simd::KernelTable& scalar =
      tensor::simd::KernelsFor(SimdLevel::kScalar);
  Rng rng(777);
  for (int64_t n : {1, 7, 16, 17, 31, 64, 97, 1024, 1031}) {
    const std::vector<float> src = RandomVec(n, rng);
    const std::vector<float> base = RandomVec(n, rng);
    const float s = 0.37f;

    std::vector<float> axpy_want = base, scale_want = base, had_want = base;
    scalar.axpy(axpy_want.data(), src.data(), s, n);
    scalar.scale(scale_want.data(), s, n);
    scalar.hadamard(had_want.data(), src.data(), n);

    for (SimdLevel level : CompiledLevelsAboveScalar()) {
      const tensor::simd::KernelTable& kt = tensor::simd::KernelsFor(level);
      std::vector<float> axpy_got = base, scale_got = base, had_got = base;
      kt.axpy(axpy_got.data(), src.data(), s, n);
      kt.scale(scale_got.data(), s, n);
      kt.hadamard(had_got.data(), src.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(axpy_got[i], axpy_want[i]) << kt.name << " axpy n=" << n;
        ASSERT_EQ(scale_got[i], scale_want[i]) << kt.name << " scale n=" << n;
        ASSERT_EQ(had_got[i], had_want[i]) << kt.name << " hadamard n=" << n;
      }
    }
  }
}

TEST_F(SimdParityTest, PairwiseAssembleMatchesScalarBitwise) {
  const tensor::simd::KernelTable& scalar =
      tensor::simd::KernelsFor(SimdLevel::kScalar);
  Rng rng(31337);
  for (int64_t n : {1, 15, 16, 17, 61, 128, 131}) {
    const std::vector<float> prow = RandomVec(n, rng);
    std::vector<float> b_norms = RandomVec(n, rng);
    for (float& v : b_norms) v = v * v;  // Norms are non-negative.
    const float a_norm = 2.5f;

    std::vector<float> want(n, -1.0f), got(n, -1.0f);
    scalar.pairwise_assemble(want.data(), prow.data(), b_norms.data(), a_norm, n);
    for (SimdLevel level : CompiledLevelsAboveScalar()) {
      const tensor::simd::KernelTable& kt = tensor::simd::KernelsFor(level);
      kt.pairwise_assemble(got.data(), prow.data(), b_norms.data(), a_norm, n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << kt.name << " n=" << n << " elem " << i;
      }
    }
  }
}

}  // namespace
}  // namespace darec::core
