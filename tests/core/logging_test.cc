#include "core/logging.h"

#include "core/stopwatch.h"
#include "gtest/gtest.h"

namespace darec::core {
namespace {

/// Captures stderr for the duration of a scope.
class CaptureStderr {
 public:
  CaptureStderr() { ::testing::internal::CaptureStderr(); }
  std::string Stop() { return ::testing::internal::GetCapturedStderr(); }
};

TEST(LoggingTest, EmitsAtOrAboveMinLevel) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kInfo);
  CaptureStderr capture;
  DARE_LOG(Info) << "visible message";
  DARE_LOG(Debug) << "hidden message";
  const std::string output = capture.Stop();
  EXPECT_NE(output.find("visible message"), std::string::npos);
  EXPECT_EQ(output.find("hidden message"), std::string::npos);
  SetMinLogLevel(original);
}

TEST(LoggingTest, IncludesLevelTagAndBasename) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kDebug);
  CaptureStderr capture;
  DARE_LOG(Warning) << "careful";
  const std::string output = capture.Stop();
  EXPECT_NE(output.find("[W "), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  // Full path directories are stripped.
  EXPECT_EQ(output.find("/tests/"), std::string::npos);
  SetMinLogLevel(original);
}

TEST(LoggingTest, StreamsComposedValues) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kInfo);
  CaptureStderr capture;
  DARE_LOG(Error) << "x=" << 42 << " y=" << 1.5 << " z=" << true;
  const std::string output = capture.Stop();
  EXPECT_NE(output.find("x=42 y=1.5 z=1"), std::string::npos);
  SetMinLogLevel(original);
}

TEST(LoggingTest, SetMinLevelRoundTrips) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(original);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch stopwatch;
  // Busy-wait a tiny amount; elapsed must be non-negative and monotone.
  const double first = stopwatch.ElapsedSeconds();
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 1e-9;
  EXPECT_GE(sink, 0.0);
  const double second = stopwatch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  EXPECT_NEAR(stopwatch.ElapsedMillis(), stopwatch.ElapsedSeconds() * 1e3,
              stopwatch.ElapsedMillis() * 0.5 + 1.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch stopwatch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 1e-9;
  EXPECT_GE(sink, 0.0);
  const double before = stopwatch.ElapsedSeconds();
  stopwatch.Reset();
  EXPECT_LE(stopwatch.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace darec::core
