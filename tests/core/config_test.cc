#include "core/config.h"

#include "gtest/gtest.h"

namespace darec::core {
namespace {

TEST(ConfigTest, ParsesKeyValueArgs) {
  auto config = Config::FromArgs({"lr=0.001", "--epochs=30", "dataset=yelp"});
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->GetDouble("lr", 0.0), 0.001);
  EXPECT_EQ(config->GetInt("epochs", 0), 30);
  EXPECT_EQ(config->GetString("dataset", ""), "yelp");
}

TEST(ConfigTest, RejectsMalformedArg) {
  EXPECT_FALSE(Config::FromArgs({"no_equals_sign"}).ok());
  EXPECT_FALSE(Config::FromArgs({"=value"}).ok());
}

TEST(ConfigTest, DefaultsWhenMissing) {
  Config config;
  EXPECT_EQ(config.GetInt("k", 4), 4);
  EXPECT_DOUBLE_EQ(config.GetDouble("lambda", 0.1), 0.1);
  EXPECT_EQ(config.GetString("name", "darec"), "darec");
  EXPECT_TRUE(config.GetBool("flag", true));
}

TEST(ConfigTest, SettersRoundTrip) {
  Config config;
  config.SetInt("n", 4096);
  config.SetDouble("lambda", 0.5);
  config.SetBool("verbose", true);
  config.Set("model", "lightgcn");
  EXPECT_EQ(config.GetInt("n", 0), 4096);
  EXPECT_DOUBLE_EQ(config.GetDouble("lambda", 0.0), 0.5);
  EXPECT_TRUE(config.GetBool("verbose", false));
  EXPECT_EQ(config.GetString("model", ""), "lightgcn");
  EXPECT_TRUE(config.Contains("model"));
  EXPECT_FALSE(config.Contains("absent"));
}

TEST(ConfigTest, BoolParsingVariants) {
  Config config;
  config.Set("a", "true");
  config.Set("b", "1");
  config.Set("c", "no");
  EXPECT_TRUE(config.GetBool("a", false));
  EXPECT_TRUE(config.GetBool("b", false));
  EXPECT_FALSE(config.GetBool("c", true));
}

TEST(ConfigTest, RequiredGetters) {
  Config config;
  config.Set("k", "8");
  config.Set("bad", "not_a_number");
  ASSERT_TRUE(config.GetRequiredInt("k").ok());
  EXPECT_EQ(config.GetRequiredInt("k").value(), 8);
  EXPECT_EQ(config.GetRequiredInt("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(config.GetRequiredInt("bad").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(config.GetRequiredDouble("bad").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(config.GetRequiredString("missing").ok());
}

TEST(ConfigTest, ToStringSortedByKey) {
  Config config;
  config.Set("b", "2");
  config.Set("a", "1");
  EXPECT_EQ(config.ToString(), "a=1 b=2");
  EXPECT_EQ(config.Keys(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace darec::core
