#include "core/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gtest/gtest.h"

namespace darec::core {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithMeanAndStddev) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (int64_t count : {0, 5, 50, 99, 100}) {
    std::vector<int64_t> sample = rng.SampleWithoutReplacement(100, count);
    EXPECT_EQ(static_cast<int64_t>(sample.size()), count);
    std::set<int64_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int64_t>(distinct.size()), count);
    for (int64_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(41);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child.NextUint64(), parent.NextUint64());
}

}  // namespace
}  // namespace darec::core
