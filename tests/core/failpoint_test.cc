#include "core/failpoint.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace darec::core {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoint::DisarmAll(); }
};

TEST_F(FailPointTest, DisabledByDefault) {
  EXPECT_FALSE(FailPoint::Enabled());
  EXPECT_FALSE(FailPoint::Fires("anything"));
  EXPECT_FALSE(FailPoint::IsArmed("anything"));
}

TEST_F(FailPointTest, ArmedPointFiresAndExposesArg) {
  FailPoint::Arm("test.point", /*arg=*/42);
  EXPECT_TRUE(FailPoint::Enabled());
  EXPECT_TRUE(FailPoint::IsArmed("test.point"));
  int64_t arg = 0;
  EXPECT_TRUE(FailPoint::Fires("test.point", &arg));
  EXPECT_EQ(arg, 42);
  // fires = -1: keeps firing until disarmed.
  EXPECT_TRUE(FailPoint::Fires("test.point"));
  FailPoint::Disarm("test.point");
  EXPECT_FALSE(FailPoint::Fires("test.point"));
  EXPECT_FALSE(FailPoint::Enabled());
}

TEST_F(FailPointTest, OtherNamesAreUnaffected) {
  FailPoint::Arm("test.point");
  EXPECT_FALSE(FailPoint::Fires("test.other"));
  EXPECT_TRUE(FailPoint::Fires("test.point"));
}

TEST_F(FailPointTest, FireBudgetAutoDisarms) {
  FailPoint::Arm("test.point", /*arg=*/0, /*fires=*/2);
  EXPECT_TRUE(FailPoint::Fires("test.point"));
  EXPECT_TRUE(FailPoint::Fires("test.point"));
  EXPECT_FALSE(FailPoint::Fires("test.point"));
  EXPECT_FALSE(FailPoint::IsArmed("test.point"));
  EXPECT_FALSE(FailPoint::Enabled());
}

TEST_F(FailPointTest, SkipBudgetDelaysFiring) {
  FailPoint::Arm("test.point", /*arg=*/7, /*fires=*/1, /*skip_hits=*/3);
  EXPECT_FALSE(FailPoint::Fires("test.point"));
  EXPECT_FALSE(FailPoint::Fires("test.point"));
  EXPECT_FALSE(FailPoint::Fires("test.point"));
  int64_t arg = 0;
  EXPECT_TRUE(FailPoint::Fires("test.point", &arg));
  EXPECT_EQ(arg, 7);
  EXPECT_FALSE(FailPoint::Fires("test.point"));
}

TEST_F(FailPointTest, RearmReplacesConfiguration) {
  FailPoint::Arm("test.point", /*arg=*/1, /*fires=*/1);
  FailPoint::Arm("test.point", /*arg=*/9, /*fires=*/2);
  int64_t arg = 0;
  EXPECT_TRUE(FailPoint::Fires("test.point", &arg));
  EXPECT_EQ(arg, 9);
  EXPECT_TRUE(FailPoint::Fires("test.point"));
  EXPECT_FALSE(FailPoint::Fires("test.point"));
}

TEST_F(FailPointTest, DisarmAllClearsEverything) {
  FailPoint::Arm("test.a");
  FailPoint::Arm("test.b");
  FailPoint::DisarmAll();
  EXPECT_FALSE(FailPoint::Enabled());
  EXPECT_FALSE(FailPoint::Fires("test.a"));
  EXPECT_FALSE(FailPoint::Fires("test.b"));
}

TEST_F(FailPointTest, ArmFromSpecParsesEntries) {
  ASSERT_TRUE(FailPoint::ArmFromSpec("test.a,test.b=5,test.c=3:2:1").ok());
  EXPECT_TRUE(FailPoint::IsArmed("test.a"));
  int64_t arg = 0;
  EXPECT_TRUE(FailPoint::Fires("test.b", &arg));
  EXPECT_EQ(arg, 5);
  // test.c: skip 1 hit, then fire twice with arg 3.
  EXPECT_FALSE(FailPoint::Fires("test.c"));
  arg = 0;
  EXPECT_TRUE(FailPoint::Fires("test.c", &arg));
  EXPECT_EQ(arg, 3);
  EXPECT_TRUE(FailPoint::Fires("test.c"));
  EXPECT_FALSE(FailPoint::Fires("test.c"));
}

TEST_F(FailPointTest, ArmFromSpecRejectsGarbage) {
  EXPECT_EQ(FailPoint::ArmFromSpec("=5").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailPoint::ArmFromSpec("test.a=notanumber").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(FailPoint::IsArmed("test.a"));
}

TEST_F(FailPointTest, ArmFromEnvReadsVariable) {
  ASSERT_EQ(setenv("DAREC_FAILPOINTS", "test.env=11:1", /*overwrite=*/1), 0);
  ASSERT_TRUE(FailPoint::ArmFromEnv().ok());
  unsetenv("DAREC_FAILPOINTS");
  int64_t arg = 0;
  EXPECT_TRUE(FailPoint::Fires("test.env", &arg));
  EXPECT_EQ(arg, 11);
}

TEST_F(FailPointTest, ArmFromEnvUnsetIsNoOp) {
  unsetenv("DAREC_FAILPOINTS");
  EXPECT_TRUE(FailPoint::ArmFromEnv().ok());
  EXPECT_FALSE(FailPoint::Enabled());
}

}  // namespace
}  // namespace darec::core
