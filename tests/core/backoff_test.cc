// core::Backoff: the delay schedule is a pure function of (options, seed) —
// tests assert sequences exactly instead of sleeping.
#include "core/backoff.h"

#include <vector>

#include "gtest/gtest.h"

namespace darec::core {
namespace {

TEST(BackoffTest, NoJitterIsExactGeometricGrowthCappedAtMax) {
  BackoffOptions options;
  options.initial_us = 100;
  options.multiplier = 2.0;
  options.max_us = 1000;
  options.jitter = 0.0;
  Backoff backoff(options);
  EXPECT_EQ(backoff.NextDelayUs(), 100);
  EXPECT_EQ(backoff.NextDelayUs(), 200);
  EXPECT_EQ(backoff.NextDelayUs(), 400);
  EXPECT_EQ(backoff.NextDelayUs(), 800);
  EXPECT_EQ(backoff.NextDelayUs(), 1000);  // capped
  EXPECT_EQ(backoff.NextDelayUs(), 1000);  // stays capped
  EXPECT_EQ(backoff.attempts(), 6);
}

TEST(BackoffTest, SameSeedSameSequence) {
  BackoffOptions options;
  options.seed = 42;
  options.jitter = 0.5;
  Backoff a(options);
  Backoff b(options);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextDelayUs(), b.NextDelayUs()) << "attempt " << i;
  }
}

TEST(BackoffTest, DifferentSeedsDiverge) {
  BackoffOptions options;
  options.jitter = 0.5;
  options.seed = 1;
  Backoff a(options);
  options.seed = 2;
  Backoff b(options);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.NextDelayUs() != b.NextDelayUs();
  EXPECT_TRUE(any_diff);
}

TEST(BackoffTest, JitteredDelaysStayInBand) {
  BackoffOptions options;
  options.initial_us = 1000;
  options.multiplier = 2.0;
  options.max_us = 64000;
  options.jitter = 0.5;
  options.seed = 7;
  Backoff backoff(options);
  double base = 1000.0;
  for (int i = 0; i < 12; ++i) {
    const double capped = std::min(base, 64000.0);
    const int64_t delay = backoff.NextDelayUs();
    EXPECT_GE(delay, static_cast<int64_t>(capped * 0.5) - 1) << "attempt " << i;
    EXPECT_LE(delay, static_cast<int64_t>(capped) + 1) << "attempt " << i;
    base = std::min(base * 2.0, 64000.0);
  }
}

TEST(BackoffTest, ResetReplaysTheSequence) {
  BackoffOptions options;
  options.seed = 9;
  options.jitter = 0.3;
  Backoff backoff(options);
  std::vector<int64_t> first;
  for (int i = 0; i < 8; ++i) first.push_back(backoff.NextDelayUs());
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(backoff.NextDelayUs(), first[static_cast<size_t>(i)])
        << "attempt " << i;
  }
}

TEST(BackoffTest, DegenerateOptionsAreClamped) {
  BackoffOptions options;
  options.initial_us = -5;
  options.multiplier = 0.1;   // would shrink: clamped to 1.0
  options.max_us = -100;      // clamped to initial
  options.jitter = 3.0;       // clamped to 1.0
  Backoff backoff(options);
  EXPECT_EQ(backoff.options().initial_us, 1);
  EXPECT_EQ(backoff.options().multiplier, 1.0);
  EXPECT_EQ(backoff.options().max_us, 1);
  EXPECT_EQ(backoff.options().jitter, 1.0);
  for (int i = 0; i < 5; ++i) EXPECT_GE(backoff.NextDelayUs(), 1);
}

}  // namespace
}  // namespace darec::core
