#include "topk/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/cpu_features.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "serve/recommender.h"
#include "tensor/init.h"

namespace darec::topk {
namespace {

using tensor::Matrix;

// ---------------------------------------------------------------------------
// Fixtures: a random dataset (so every user has train/val/test items) and
// random node embeddings over its users + items.
// ---------------------------------------------------------------------------

data::Dataset MakeRandomDataset(int64_t num_users, int64_t num_items,
                                int64_t per_user, uint64_t seed) {
  core::Rng rng(seed);
  std::vector<data::Interaction> interactions;
  for (int64_t u = 0; u < num_users; ++u) {
    for (int64_t item : rng.SampleWithoutReplacement(num_items, per_user)) {
      interactions.push_back({u, item});
    }
  }
  auto ds = data::Dataset::Create("topk-test", num_users, num_items,
                                  std::move(interactions), data::SplitRatio{}, rng);
  DARE_CHECK(ds.ok());
  return std::move(ds).value();
}

Matrix RandomNodes(int64_t num_nodes, int64_t dim, uint64_t seed) {
  core::Rng rng(seed);
  return tensor::RandomNormal(num_nodes, dim, 1.0f, rng);
}

/// Reference select: scalar dot scores, mask, full stable ordering by
/// (score desc, id asc), truncate — the semantics the engine must match.
std::vector<ScoredItem> NaiveTopK(const Matrix& nodes, int64_t num_users,
                                  int64_t num_items, int64_t user, int64_t k,
                                  const std::vector<int64_t>* seen,
                                  MaskMode mask_mode) {
  std::vector<ScoredItem> all;
  for (int64_t item = 0; item < num_items; ++item) {
    float score = 0.0f;
    const float* urow = nodes.Row(user);
    const float* irow = nodes.Row(num_users + item);
    for (int64_t c = 0; c < nodes.cols(); ++c) score += urow[c] * irow[c];
    const bool masked =
        seen != nullptr && std::binary_search(seen->begin(), seen->end(), item);
    if (masked) {
      if (mask_mode == MaskMode::kDrop) continue;
      score = -std::numeric_limits<float>::infinity();
    }
    all.push_back({item, score});
  }
  std::sort(all.begin(), all.end(), [](const ScoredItem& a, const ScoredItem& b) {
    return a.score != b.score ? a.score > b.score : a.item < b.item;
  });
  if (static_cast<int64_t>(all.size()) > std::min(k, num_items)) {
    all.resize(static_cast<size_t>(std::min(k, num_items)));
  }
  return all;
}

void ExpectListsEqual(const std::vector<ScoredItem>& a,
                      const std::vector<ScoredItem>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

TEST(TopKEngineTest, MatchesNaiveReferenceBothMaskModes) {
  data::Dataset ds = MakeRandomDataset(23, 17, 8, 1);
  Matrix nodes = RandomNodes(ds.num_nodes(), 12, 2);
  Engine engine(nodes, ds.num_users(), ds.num_items());
  SeenItemsFn seen = [&ds](int64_t u) { return &ds.TrainItemsOfUser(u); };

  std::vector<int64_t> users;
  for (int64_t u = 0; u < ds.num_users(); ++u) users.push_back(u);

  for (MaskMode mode : {MaskMode::kScoreNegInf, MaskMode::kDrop}) {
    auto lists = engine.TopK(users, 5, seen, mode);
    ASSERT_EQ(lists.size(), users.size());
    for (size_t q = 0; q < users.size(); ++q) {
      ExpectListsEqual(lists[q],
                       NaiveTopK(nodes, ds.num_users(), ds.num_items(),
                                 users[q], 5, &ds.TrainItemsOfUser(users[q]),
                                 mode));
    }
  }
}

TEST(TopKEngineTest, NoMaskingWhenSeenFnEmpty) {
  Matrix nodes = RandomNodes(9, 6, 3);
  Engine engine(nodes, 4, 5);
  auto lists = engine.TopK({0, 3}, 3, SeenItemsFn(), MaskMode::kDrop);
  ASSERT_EQ(lists.size(), 2u);
  for (size_t q = 0; q < 2; ++q) {
    ExpectListsEqual(lists[q], NaiveTopK(nodes, 4, 5, q == 0 ? 0 : 3, 3,
                                         nullptr, MaskMode::kDrop));
  }
}

TEST(TopKEngineTest, TieBreakIsAscendingItemId) {
  // Every item embedding identical -> all scores tie; the ranking must be
  // item ids ascending, at every rank, regardless of heap internals.
  Matrix nodes(3 + 20, 4);
  for (int64_t r = 0; r < nodes.rows(); ++r) nodes(r, 0) = 1.0f;
  Engine engine(nodes, 3, 20);
  auto lists = engine.TopK({0, 1, 2}, 7, SeenItemsFn(), MaskMode::kScoreNegInf);
  for (const auto& list : lists) {
    ASSERT_EQ(list.size(), 7u);
    for (int64_t i = 0; i < 7; ++i) EXPECT_EQ(list[i].item, i);
  }
  // Masked items tie at -inf and also break by id: with items {0,2} seen,
  // the eligible 18 items come first, then 0 before 2.
  const std::vector<int64_t> seen_items = {0, 2};
  SeenItemsFn seen = [&seen_items](int64_t) { return &seen_items; };
  auto masked = engine.TopK({1}, 20, seen, MaskMode::kScoreNegInf);
  ASSERT_EQ(masked[0].size(), 20u);
  EXPECT_EQ(masked[0][18].item, 0);
  EXPECT_EQ(masked[0][19].item, 2);
}

TEST(TopKEngineTest, ThreadCountInvariance) {
  data::Dataset ds = MakeRandomDataset(40, 30, 9, 4);
  Matrix nodes = RandomNodes(ds.num_nodes(), 16, 5);
  Engine engine(nodes, ds.num_users(), ds.num_items());
  SeenItemsFn seen = [&ds](int64_t u) { return &ds.TrainItemsOfUser(u); };
  std::vector<int64_t> users;
  for (int64_t u = 0; u < ds.num_users(); ++u) users.push_back(u);

  core::ThreadPool::SetGlobalThreads(1);
  auto serial = engine.TopK(users, 10, seen, MaskMode::kScoreNegInf);
  core::ThreadPool::SetGlobalThreads(8);
  auto parallel = engine.TopK(users, 10, seen, MaskMode::kScoreNegInf);
  core::ThreadPool::SetGlobalThreads(core::ThreadPool::DefaultThreads());

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t q = 0; q < serial.size(); ++q) {
    ExpectListsEqual(serial[q], parallel[q]);
  }
}

TEST(TopKEngineTest, BlockSizeInvarianceIncludingRaggedBlocks) {
  // 10 queried users with block sizes 3 / 4 / 128: 10 is not a multiple of
  // either small block, so the last block is ragged; results must not move.
  data::Dataset ds = MakeRandomDataset(10, 14, 7, 6);
  Matrix nodes = RandomNodes(ds.num_nodes(), 8, 7);
  SeenItemsFn seen = [&ds](int64_t u) { return &ds.TrainItemsOfUser(u); };
  std::vector<int64_t> users;
  for (int64_t u = 0; u < ds.num_users(); ++u) users.push_back(u);

  EngineOptions wide;  // default 128: one block
  Engine reference(nodes, ds.num_users(), ds.num_items(), wide);
  auto expected = reference.TopK(users, 6, seen, MaskMode::kDrop);
  for (int64_t block : {1, 3, 4}) {
    EngineOptions options;
    options.block_users = block;
    Engine engine(nodes, ds.num_users(), ds.num_items(), options);
    auto lists = engine.TopK(users, 6, seen, MaskMode::kDrop);
    ASSERT_EQ(lists.size(), expected.size());
    for (size_t q = 0; q < lists.size(); ++q) {
      ExpectListsEqual(lists[q], expected[q]);
    }
  }
}

TEST(TopKEngineTest, KAtLeastNumItems) {
  Matrix nodes = RandomNodes(2 + 6, 5, 8);
  Engine engine(nodes, 2, 6);
  const std::vector<int64_t> seen_items = {1, 4};
  SeenItemsFn seen = [&seen_items](int64_t) { return &seen_items; };

  // kScoreNegInf keeps every item: list size = num_items even for k >> I.
  auto full = engine.TopK({0}, 100, seen, MaskMode::kScoreNegInf);
  ASSERT_EQ(full[0].size(), 6u);
  // kDrop clamps to the eligible count.
  auto dropped = engine.TopK({0}, 100, seen, MaskMode::kDrop);
  ASSERT_EQ(dropped[0].size(), 4u);
  for (const ScoredItem& s : dropped[0]) {
    EXPECT_NE(s.item, 1);
    EXPECT_NE(s.item, 4);
  }
  // Every item seen -> empty list under kDrop.
  const std::vector<int64_t> all_items = {0, 1, 2, 3, 4, 5};
  SeenItemsFn all_seen = [&all_items](int64_t) { return &all_items; };
  auto empty = engine.TopK({0}, 3, all_seen, MaskMode::kDrop);
  EXPECT_TRUE(empty[0].empty());
}

TEST(TopKEngineTest, EmptyQueryAndDuplicateUsers) {
  Matrix nodes = RandomNodes(5 + 4, 3, 9);
  Engine engine(nodes, 5, 4);
  EXPECT_TRUE(engine.TopK({}, 2, SeenItemsFn(), MaskMode::kDrop).empty());
  auto lists = engine.TopK({2, 2, 2}, 2, SeenItemsFn(), MaskMode::kDrop);
  ASSERT_EQ(lists.size(), 3u);
  ExpectListsEqual(lists[0], lists[1]);
  ExpectListsEqual(lists[0], lists[2]);
}

TEST(TopKEngineTest, TopKOneBitwiseEqualsBatchOfOne) {
  data::Dataset ds = MakeRandomDataset(15, 21, 6, 20);
  Matrix nodes = RandomNodes(ds.num_nodes(), 10, 21);
  Engine engine(nodes, ds.num_users(), ds.num_items());
  SeenItemsFn seen = [&ds](int64_t u) { return &ds.TrainItemsOfUser(u); };
  for (MaskMode mode : {MaskMode::kScoreNegInf, MaskMode::kDrop}) {
    for (int64_t u = 0; u < ds.num_users(); ++u) {
      auto batch = engine.TopK({u}, 5, seen, mode);
      std::vector<ScoredItem> one;
      engine.TopKOne(u, 5, seen, mode, &one);
      ExpectListsEqual(one, batch[0]);
    }
  }
  // Result vector is overwritten, not appended to.
  std::vector<ScoredItem> reused(30, ScoredItem{-1, 0.0f});
  engine.TopKOne(0, 4, seen, MaskMode::kDrop, &reused);
  EXPECT_LE(reused.size(), 4u);
}

// ---------------------------------------------------------------------------
// int8 quantized scoring: ranking quality vs fp32, and bitwise determinism
// across SIMD tiers, block sizes, and thread counts.
// ---------------------------------------------------------------------------

TEST(TopKEngineInt8Test, RequiresBuildFlagAndReportsCapability) {
  Matrix nodes = RandomNodes(4 + 6, 5, 30);
  Engine fp32_only(nodes, 4, 6);
  EXPECT_FALSE(fp32_only.has_int8());
  EngineOptions options;
  options.build_int8 = true;
  Engine both(nodes, 4, 6, options);
  EXPECT_TRUE(both.has_int8());
}

/// The quality gate from the serve acceptance criteria: int8 top-K must
/// track fp32 top-K closely (high overlap), and the surviving score error
/// must respect the analytic per-element bound from tensor/quant.h.
TEST(TopKEngineInt8Test, TopKOverlapAndScoreErrorVsFp32) {
  data::Dataset ds = MakeRandomDataset(60, 80, 10, 31);
  Matrix nodes = RandomNodes(ds.num_nodes(), 32, 32);
  EngineOptions options;
  options.build_int8 = true;
  Engine engine(nodes, ds.num_users(), ds.num_items(), options);
  SeenItemsFn seen = [&ds](int64_t u) { return &ds.TrainItemsOfUser(u); };
  std::vector<int64_t> users;
  for (int64_t u = 0; u < ds.num_users(); ++u) users.push_back(u);

  const int64_t k = 10;
  auto fp32 = engine.TopK(users, k, seen, MaskMode::kDrop, Precision::kFp32);
  auto int8 = engine.TopK(users, k, seen, MaskMode::kDrop, Precision::kInt8);
  ASSERT_EQ(fp32.size(), int8.size());

  double overlap_sum = 0.0;
  for (size_t q = 0; q < users.size(); ++q) {
    ASSERT_EQ(int8[q].size(), fp32[q].size());
    std::vector<int64_t> fp_items, i8_items;
    for (const auto& s : fp32[q]) fp_items.push_back(s.item);
    for (const auto& s : int8[q]) i8_items.push_back(s.item);
    std::sort(fp_items.begin(), fp_items.end());
    std::sort(i8_items.begin(), i8_items.end());
    std::vector<int64_t> common;
    std::set_intersection(fp_items.begin(), fp_items.end(), i8_items.begin(),
                          i8_items.end(), std::back_inserter(common));
    overlap_sum +=
        static_cast<double>(common.size()) / static_cast<double>(fp_items.size());
  }
  const double mean_overlap = overlap_sum / static_cast<double>(users.size());
  EXPECT_GE(mean_overlap, 0.9) << "int8 ranking drifted too far from fp32";
}

TEST(TopKEngineInt8Test, BitwiseInvariantAcrossTiersBlocksAndThreads) {
  data::Dataset ds = MakeRandomDataset(30, 26, 8, 40);
  Matrix nodes = RandomNodes(ds.num_nodes(), 19, 41);
  SeenItemsFn seen = [&ds](int64_t u) { return &ds.TrainItemsOfUser(u); };
  std::vector<int64_t> users;
  for (int64_t u = 0; u < ds.num_users(); ++u) users.push_back(u);

  EngineOptions base;
  base.build_int8 = true;
  Engine reference_engine(nodes, ds.num_users(), ds.num_items(), base);
  auto reference =
      reference_engine.TopK(users, 7, seen, MaskMode::kDrop, Precision::kInt8);

  std::vector<core::SimdLevel> levels = {core::SimdLevel::kScalar};
  if (core::HardwareSimdLevel() >= core::SimdLevel::kAvx2) {
    levels.push_back(core::SimdLevel::kAvx2);
  }
  if (core::HardwareSimdLevel() >= core::SimdLevel::kAvx512) {
    levels.push_back(core::SimdLevel::kAvx512);
  }
  const core::SimdLevel original = core::ActiveSimdLevel();
  for (core::SimdLevel level : levels) {
    core::SetSimdLevelForTest(level);
    for (int64_t block : {1, 7, 128}) {
      for (int threads : {1, 8}) {
        core::ThreadPool::SetGlobalThreads(threads);
        EngineOptions options;
        options.build_int8 = true;
        options.block_users = block;
        Engine engine(nodes, ds.num_users(), ds.num_items(), options);
        auto lists = engine.TopK(users, 7, seen, MaskMode::kDrop,
                                 Precision::kInt8);
        ASSERT_EQ(lists.size(), reference.size());
        for (size_t q = 0; q < lists.size(); ++q) {
          ExpectListsEqual(lists[q], reference[q]);
        }
      }
    }
  }
  core::SetSimdLevelForTest(original);
  core::ThreadPool::SetGlobalThreads(core::ThreadPool::DefaultThreads());
}

// ---------------------------------------------------------------------------
// Consumer parity: EvaluateRanking and Recommender both sit on the engine.
// ---------------------------------------------------------------------------

/// Literal re-implementation of the pre-engine per-user EvaluateRanking loop
/// (scalar dots, -inf mask, nth_element + sort). Random real-valued
/// embeddings make ties measure-zero, so its unspecified tie order is moot.
eval::MetricSet SeedStyleEvaluateRanking(const Matrix& nodes,
                                         const data::Dataset& ds,
                                         const eval::EvalOptions& options) {
  const int64_t num_users = ds.num_users();
  const int64_t num_items = ds.num_items();
  const int64_t dim = nodes.cols();
  const int64_t max_k = *std::max_element(options.ks.begin(), options.ks.end());
  eval::MetricSet totals;
  for (int64_t k : options.ks) {
    totals.recall[k] = totals.ndcg[k] = totals.precision[k] = 0.0;
    totals.hit_rate[k] = totals.mrr[k] = 0.0;
  }
  std::vector<float> scores(num_items);
  std::vector<int64_t> order(num_items);
  int64_t evaluated = 0;
  for (int64_t user = 0; user < num_users; ++user) {
    const auto& relevant = options.split == eval::EvalSplit::kTest
                               ? ds.TestItemsOfUser(user)
                               : ds.ValidationItemsOfUser(user);
    if (relevant.empty()) continue;
    ++evaluated;
    const float* urow = nodes.Row(user);
    for (int64_t item = 0; item < num_items; ++item) {
      const float* irow = nodes.Row(num_users + item);
      float acc = 0.0f;
      for (int64_t c = 0; c < dim; ++c) acc += urow[c] * irow[c];
      scores[item] = acc;
    }
    for (int64_t item : ds.TrainItemsOfUser(user)) {
      scores[item] = -std::numeric_limits<float>::infinity();
    }
    for (int64_t i = 0; i < num_items; ++i) order[i] = i;
    std::nth_element(order.begin(), order.begin() + (max_k - 1), order.end(),
                     [&](int64_t a, int64_t b) { return scores[a] > scores[b]; });
    std::sort(order.begin(), order.begin() + max_k,
              [&](int64_t a, int64_t b) { return scores[a] > scores[b]; });
    std::vector<int64_t> top(order.begin(), order.begin() + max_k);
    for (int64_t k : options.ks) {
      totals.recall[k] += eval::RecallAtK(top, relevant, k);
      totals.ndcg[k] += eval::NdcgAtK(top, relevant, k);
      totals.precision[k] += eval::PrecisionAtK(top, relevant, k);
      totals.hit_rate[k] += eval::HitRateAtK(top, relevant, k);
      totals.mrr[k] += eval::MrrAtK(top, relevant, k);
    }
  }
  if (evaluated > 0) {
    for (int64_t k : options.ks) {
      totals.recall[k] /= static_cast<double>(evaluated);
      totals.ndcg[k] /= static_cast<double>(evaluated);
      totals.precision[k] /= static_cast<double>(evaluated);
      totals.hit_rate[k] /= static_cast<double>(evaluated);
      totals.mrr[k] /= static_cast<double>(evaluated);
    }
  }
  return totals;
}

void ExpectMetricsBitwiseEqual(const eval::MetricSet& a, const eval::MetricSet& b) {
  ASSERT_EQ(a.recall.size(), b.recall.size());
  for (const auto& [k, value] : a.recall) EXPECT_EQ(value, b.recall.at(k)) << k;
  for (const auto& [k, value] : a.ndcg) EXPECT_EQ(value, b.ndcg.at(k)) << k;
  for (const auto& [k, value] : a.precision) {
    EXPECT_EQ(value, b.precision.at(k)) << k;
  }
  for (const auto& [k, value] : a.hit_rate) {
    EXPECT_EQ(value, b.hit_rate.at(k)) << k;
  }
  for (const auto& [k, value] : a.mrr) EXPECT_EQ(value, b.mrr.at(k)) << k;
}

TEST(TopKEngineConsumerTest, EvaluateRankingBitwiseEqualToSeedLoop) {
  data::Dataset ds = MakeRandomDataset(50, 40, 10, 10);
  Matrix nodes = RandomNodes(ds.num_nodes(), 24, 11);
  eval::EvalOptions options;
  options.ks = {3, 5, 10};
  ExpectMetricsBitwiseEqual(eval::EvaluateRanking(nodes, ds, options),
                            SeedStyleEvaluateRanking(nodes, ds, options));
  options.split = eval::EvalSplit::kValidation;
  ExpectMetricsBitwiseEqual(eval::EvaluateRanking(nodes, ds, options),
                            SeedStyleEvaluateRanking(nodes, ds, options));
}

TEST(TopKEngineConsumerTest, RecommendTopKBatchEqualsPerUserCalls) {
  data::Dataset ds = MakeRandomDataset(25, 18, 8, 12);
  Matrix nodes = RandomNodes(ds.num_nodes(), 10, 13);
  auto rec = serve::Recommender::Create(nodes, &ds);
  ASSERT_TRUE(rec.ok());

  std::vector<int64_t> users;
  for (int64_t u = 0; u < ds.num_users(); ++u) users.push_back(u);
  auto batch = rec->RecommendTopKBatch(users, 6);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), users.size());
  for (size_t q = 0; q < users.size(); ++q) {
    auto single = rec->RecommendTopK(users[q], 6);
    ASSERT_TRUE(single.ok());
    ExpectListsEqual((*batch)[q], *single);
    // And both equal the naive masked reference (bitwise scores: the GEMM
    // accumulates in the same ascending order as the scalar dot).
    ExpectListsEqual((*batch)[q],
                     NaiveTopK(nodes, ds.num_users(), ds.num_items(), users[q],
                               6, &ds.TrainItemsOfUser(users[q]), MaskMode::kDrop));
  }

  EXPECT_FALSE(rec->RecommendTopKBatch({0, -1}, 3).ok());
  EXPECT_FALSE(rec->RecommendTopKBatch({ds.num_users()}, 3).ok());
  EXPECT_FALSE(rec->RecommendTopKBatch({0}, 0).ok());
  auto none = rec->RecommendTopKBatch({}, 3);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

}  // namespace
}  // namespace darec::topk
