#ifndef DAREC_TESTS_TEST_UTIL_H_
#define DAREC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/autograd.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace darec::testing {

/// Checks the autograd gradient of `loss_fn` with central finite differences.
///
/// `loss_fn` must rebuild the graph from the given parameters and return the
/// scalar loss Variable. Each parameter entry is perturbed by ±h and the
/// numeric slope compared to the analytic gradient.
inline void ExpectGradientsMatch(
    const std::function<tensor::Variable(const std::vector<tensor::Variable>&)>&
        loss_fn,
    std::vector<tensor::Variable> params, float h = 1e-3f, float tol = 2e-2f) {
  // Analytic gradients.
  for (auto& p : params) p.ClearGrad();
  tensor::Variable loss = loss_fn(params);
  tensor::Backward(loss);

  for (size_t pi = 0; pi < params.size(); ++pi) {
    tensor::Variable& p = params[pi];
    ASSERT_FALSE(p.grad().empty()) << "no gradient reached parameter " << pi;
    for (int64_t r = 0; r < p.rows(); ++r) {
      for (int64_t c = 0; c < p.cols(); ++c) {
        const float original = p.value()(r, c);
        p.mutable_value()(r, c) = original + h;
        const float plus = loss_fn(params).scalar();
        p.mutable_value()(r, c) = original - h;
        const float minus = loss_fn(params).scalar();
        p.mutable_value()(r, c) = original;
        const float numeric = (plus - minus) / (2.0f * h);
        const float analytic = p.grad()(r, c);
        const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic)});
        EXPECT_NEAR(analytic, numeric, tol * scale)
            << "param " << pi << " entry (" << r << "," << c << ")";
      }
    }
  }
}

}  // namespace darec::testing

#endif  // DAREC_TESTS_TEST_UTIL_H_
