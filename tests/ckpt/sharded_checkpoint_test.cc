#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "core/crc32.h"
#include "core/failpoint.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "gtest/gtest.h"
#include "tensor/init.h"

namespace darec::ckpt {
namespace {

namespace fs = std::filesystem;

class ShardedCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sharded_ckpt_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    core::FailPoint::DisarmAll();
    core::ThreadPool::SetGlobalThreads(core::ThreadPool::DefaultThreads());
    fs::remove_all(dir_);
  }

  CheckpointManager MakeManager(bool sharded, int64_t keep_last = 3) {
    CheckpointManagerOptions options;
    options.dir = dir_;
    options.sharded = sharded;
    options.keep_last = keep_last;
    return CheckpointManager(options);
  }

  std::string dir_;
};

Bundle MakeTestBundle(uint64_t salt = 3) {
  Bundle bundle;
  ByteWriter meta;
  meta.PutU32(7);
  meta.PutString("lightgcn");
  bundle.Put("meta", meta.Release());

  core::Rng rng(salt);
  ByteWriter params;
  params.PutMatrix(tensor::RandomNormal(8, 6, 1.0f, rng));
  bundle.Put("params", params.Release());

  ByteWriter history;
  history.PutF64Vector({0.5, 0.25, 0.125});
  bundle.Put("history", history.Release());

  ByteWriter rng_state;
  rng_state.PutU64(salt * 0x9e3779b97f4a7c15ull);
  bundle.Put("rng", rng_state.Release());
  return bundle;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(ShardedCheckpointTest, SaveLoadRoundTrip) {
  CheckpointManager manager = MakeManager(/*sharded=*/true);
  const Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(manager.Save(4, bundle).ok());

  // The layout on disk: one manifest plus one .sec file per section.
  const std::string manifest = manager.PathForStep(4);
  ASSERT_TRUE(manifest.size() > 5 &&
              manifest.compare(manifest.size() - 5, 5, ".dckm") == 0);
  EXPECT_TRUE(fs::exists(manifest));
  const std::string section_dir =
      manifest.substr(0, manifest.size() - 5) + ".dckd";
  for (const auto& [name, payload] : bundle.sections) {
    EXPECT_EQ(ReadAll(section_dir + "/" + name + ".sec"), payload);
  }

  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->step, 4);
  EXPECT_EQ(loaded->bundle.sections, bundle.sections);
}

TEST_F(ShardedCheckpointTest, WrittenBytesAreThreadCountInvariant) {
  auto digest_save = [&](const std::string& subdir, int threads) {
    core::ThreadPool::SetGlobalThreads(threads);
    CheckpointManagerOptions options;
    options.dir = dir_ + "/" + subdir;
    options.sharded = true;
    CheckpointManager manager(options);
    EXPECT_TRUE(manager.Save(1, MakeTestBundle()).ok());
    std::vector<std::pair<std::string, uint32_t>> digests;
    for (const auto& entry :
         fs::recursive_directory_iterator(options.dir)) {
      if (!entry.is_regular_file()) continue;
      digests.emplace_back(
          fs::relative(entry.path(), options.dir).string(),
          core::Crc32(ReadAll(entry.path().string())));
    }
    std::sort(digests.begin(), digests.end());
    return digests;
  };
  const auto one = digest_save("t1", 1);
  const auto eight = digest_save("t8", 8);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
}

TEST_F(ShardedCheckpointTest, ListSeesBothLayoutsAndRotationRemovesSectionDirs) {
  // Steps 1 and 2 in the legacy single-file layout, 3 and 4 sharded.
  CheckpointManager legacy = MakeManager(/*sharded=*/false, /*keep_last=*/10);
  const Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(legacy.Save(1, bundle).ok());
  ASSERT_TRUE(legacy.Save(2, bundle).ok());
  CheckpointManager sharded = MakeManager(/*sharded=*/true, /*keep_last=*/10);
  ASSERT_TRUE(sharded.Save(3, bundle).ok());
  ASSERT_TRUE(sharded.Save(4, bundle).ok());

  std::vector<CheckpointEntry> entries = sharded.List();
  ASSERT_EQ(entries.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(entries[i].step, int64_t(i + 1));
  EXPECT_FALSE(entries[0].sharded);
  EXPECT_FALSE(entries[1].sharded);
  EXPECT_TRUE(entries[2].sharded);
  EXPECT_TRUE(entries[3].sharded);

  // Rotation with keep_last=2 drops the .dckp files AND the sharded step-3
  // checkpoint with its whole section directory.
  CheckpointManager tight = MakeManager(/*sharded=*/true, /*keep_last=*/2);
  ASSERT_TRUE(tight.Save(5, bundle).ok());
  entries = tight.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].step, 4);
  EXPECT_EQ(entries[1].step, 5);
  const std::string step3 = tight.PathForStep(3);
  EXPECT_FALSE(fs::exists(step3));
  EXPECT_FALSE(fs::exists(step3.substr(0, step3.size() - 5) + ".dckd"));
}

TEST_F(ShardedCheckpointTest, SingleFileCheckpointsStayReadable) {
  // A directory written entirely by an old single-file manager is fully
  // usable by a sharded-configured one: load, list, and resume all work.
  CheckpointManager old_manager = MakeManager(/*sharded=*/false);
  const Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(old_manager.Save(7, bundle).ok());

  CheckpointManager new_manager = MakeManager(/*sharded=*/true);
  auto loaded = new_manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->step, 7);
  EXPECT_EQ(loaded->bundle.sections, bundle.sections);
}

TEST_F(ShardedCheckpointTest, CrashDuringSectionWriteKeepsPreviousCheckpoint) {
  core::ThreadPool::SetGlobalThreads(1);
  CheckpointManager manager = MakeManager(/*sharded=*/true);
  const Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(manager.Save(1, bundle).ok());

  // Kill one section write mid-stream: Save must fail, no manifest for
  // step 2 may appear, and step 1 must stay restorable bit for bit.
  core::FailPoint::Arm("fsio.write_abort", /*arg=*/10, /*fires=*/1);
  EXPECT_EQ(manager.Save(2, bundle).code(), core::StatusCode::kInternal);
  EXPECT_FALSE(fs::exists(manager.PathForStep(2)));
  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->step, 1);
  EXPECT_EQ(loaded->bundle.sections, bundle.sections);
}

TEST_F(ShardedCheckpointTest, CrashBeforeManifestRenameKeepsPreviousCheckpoint) {
  core::ThreadPool::SetGlobalThreads(1);
  CheckpointManager manager = MakeManager(/*sharded=*/true);
  const Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(manager.Save(1, bundle).ok());

  // Let every section land, then fail the manifest's commit rename (the
  // bundle has 4 sections, so skip their 4 renames first). All section
  // files of step 2 exist, but without a manifest the checkpoint does not:
  // List and LoadLatest still serve step 1.
  core::FailPoint::Arm("fsio.rename_fail", /*arg=*/0, /*fires=*/1,
                       /*skip_hits=*/static_cast<int64_t>(
                           bundle.sections.size()));
  EXPECT_EQ(manager.Save(2, bundle).code(), core::StatusCode::kInternal);
  EXPECT_FALSE(fs::exists(manager.PathForStep(2)));
  const std::string step2 = manager.PathForStep(2);
  EXPECT_TRUE(fs::exists(step2.substr(0, step2.size() - 5) + ".dckd"));
  EXPECT_EQ(manager.List().size(), 1u);
  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->step, 1);
  EXPECT_EQ(loaded->bundle.sections, bundle.sections);
}

TEST_F(ShardedCheckpointTest, EveryManifestBitFlipDetected) {
  CheckpointManager manager = MakeManager(/*sharded=*/true);
  ASSERT_TRUE(manager.Save(1, MakeTestBundle()).ok());
  const std::string manifest = manager.PathForStep(1);
  const std::string pristine = ReadAll(manifest);
  for (size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = pristine;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      WriteAll(manifest, flipped);
      EXPECT_FALSE(manager.LoadPath(manifest).ok())
          << "flip of bit " << bit << " in manifest byte " << byte
          << " went undetected";
    }
  }
}

TEST_F(ShardedCheckpointTest, EverySectionFileBitFlipDetected) {
  CheckpointManager manager = MakeManager(/*sharded=*/true);
  ASSERT_TRUE(manager.Save(1, MakeTestBundle()).ok());
  const std::string manifest = manager.PathForStep(1);
  const std::string section_dir =
      manifest.substr(0, manifest.size() - 5) + ".dckd";
  for (const auto& entry : fs::directory_iterator(section_dir)) {
    const std::string path = entry.path().string();
    const std::string pristine = ReadAll(path);
    for (size_t byte = 0; byte < pristine.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string flipped = pristine;
        flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
        WriteAll(path, flipped);
        EXPECT_FALSE(manager.LoadPath(manifest).ok())
            << "flip of bit " << bit << " in byte " << byte << " of "
            << entry.path().filename() << " went undetected";
      }
    }
    WriteAll(path, pristine);
  }

  // Truncation and a missing section file are caught too.
  const std::string victim =
      fs::directory_iterator(section_dir)->path().string();
  const std::string pristine = ReadAll(victim);
  if (!pristine.empty()) {
    WriteAll(victim, pristine.substr(0, pristine.size() - 1));
    EXPECT_FALSE(manager.LoadPath(manifest).ok());
  }
  fs::remove(victim);
  EXPECT_FALSE(manager.LoadPath(manifest).ok());
}

TEST_F(ShardedCheckpointTest, LoadLatestFallsBackPastDamagedShardedCheckpoint) {
  const Bundle bundle = MakeTestBundle();
  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    core::ThreadPool::SetGlobalThreads(threads);
    fs::remove_all(dir_);
    CheckpointManager manager = MakeManager(/*sharded=*/true);
    ASSERT_TRUE(manager.Save(1, bundle).ok());
    ASSERT_TRUE(manager.Save(2, bundle).ok());

    // Corrupt one section of the newest checkpoint; restore must fall back
    // to step 1 and reproduce its sections bit for bit.
    const std::string step2 = manager.PathForStep(2);
    const std::string victim =
        step2.substr(0, step2.size() - 5) + ".dckd/params.sec";
    std::string bytes = ReadAll(victim);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    WriteAll(victim, bytes);

    auto loaded = manager.LoadLatest();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->step, 1);
    EXPECT_EQ(loaded->bundle.sections, bundle.sections);
  }
}

TEST_F(ShardedCheckpointTest, ManifestWithTraversalFilenameRejected) {
  // Hand-craft a manifest whose section file escapes the section directory;
  // the loader must refuse before touching the path.
  fs::create_directories(dir_);
  ByteWriter content;
  content.PutU32(1);
  content.PutString("params");
  content.PutString("../../etc/passwd");
  content.PutU64(0);
  content.PutU32(0);
  ByteWriter manifest;
  manifest.PutBytes("DCKM");
  manifest.PutU32(1);
  manifest.PutU32(core::Crc32(content.str()));
  manifest.PutBytes(content.str());
  const std::string path = dir_ + "/ckpt-000000000001.dckm";
  WriteAll(path, manifest.str());

  CheckpointManager manager = MakeManager(/*sharded=*/true);
  auto loaded = manager.LoadPath(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace darec::ckpt
