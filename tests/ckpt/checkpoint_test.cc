#include "ckpt/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/serialize.h"
#include "core/failpoint.h"
#include "core/fsio.h"
#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/matrix.h"

namespace darec::ckpt {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ckpt_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    core::FailPoint::DisarmAll();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

Bundle MakeTestBundle() {
  Bundle bundle;
  ByteWriter meta;
  meta.PutU32(7);
  meta.PutString("lightgcn");
  bundle.Put("meta", meta.Release());

  core::Rng rng(3);
  ByteWriter params;
  params.PutMatrix(tensor::RandomNormal(6, 4, 1.0f, rng));
  bundle.Put("params", params.Release());

  ByteWriter history;
  history.PutF64Vector({0.5, 0.25, 0.125});
  bundle.Put("history", history.Release());
  return bundle;
}

TEST(SerializeTest, WriterReaderRoundTrip) {
  ByteWriter w;
  w.PutU8(200);
  w.PutU32(0xdeadbeef);
  w.PutU64(uint64_t{1} << 60);
  w.PutI64(-17);
  w.PutF32(1.5f);
  w.PutF64(-2.25);
  w.PutString("hello");
  core::Rng rng(1);
  tensor::Matrix m = tensor::RandomNormal(3, 5, 1.0f, rng);
  w.PutMatrix(m);
  w.PutI64Vector({1, 2, 3});
  w.PutF64Vector({0.5, 0.75});

  ByteReader r(w.str());
  EXPECT_EQ(r.GetU8().value(), 200);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeef);
  EXPECT_EQ(r.GetU64().value(), uint64_t{1} << 60);
  EXPECT_EQ(r.GetI64().value(), -17);
  EXPECT_EQ(r.GetF32().value(), 1.5f);
  EXPECT_EQ(r.GetF64().value(), -2.25);
  EXPECT_EQ(r.GetString().value(), "hello");
  tensor::Matrix back = r.GetMatrix().value();
  ASSERT_TRUE(back.SameShape(m));
  for (int64_t i = 0; i < m.size(); ++i) EXPECT_EQ(back.data()[i], m.data()[i]);
  EXPECT_EQ(r.GetI64Vector().value(), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(r.GetF64Vector().value(), (std::vector<double>{0.5, 0.75}));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(SerializeTest, TruncatedReadsAreTyped) {
  ByteWriter w;
  w.PutU32(5);
  ByteReader r(w.str());
  EXPECT_TRUE(r.GetU32().ok());
  EXPECT_EQ(r.GetU64().status().code(), core::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ImplausibleContainerSizesRejectedWithoutAllocation) {
  // A corrupted length field claiming 2^60 elements must be rejected by the
  // remaining-bytes plausibility check, not attempted as an allocation.
  ByteWriter w;
  w.PutU64(uint64_t{1} << 60);
  {
    ByteReader r(w.str());
    EXPECT_EQ(r.GetI64Vector().status().code(), core::StatusCode::kInvalidArgument);
  }
  ByteWriter m;
  m.PutI64(int64_t{1} << 40);
  m.PutI64(int64_t{1} << 40);
  {
    ByteReader r(m.str());
    EXPECT_EQ(r.GetMatrix().status().code(), core::StatusCode::kInvalidArgument);
  }
}

TEST(SerializeTest, ExpectEndCatchesTrailingBytes) {
  ByteWriter w;
  w.PutU32(5);
  w.PutU32(6);
  ByteReader r(w.str());
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_EQ(r.ExpectEnd().code(), core::StatusCode::kInvalidArgument);
}

TEST(BundleTest, RoundTripPreservesSections) {
  Bundle original = MakeTestBundle();
  const std::string serialized = SerializeBundle(original);
  auto parsed = ParseBundle(serialized);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sections, original.sections);
}

TEST(BundleTest, EmptyBundleRoundTrips) {
  auto parsed = ParseBundle(SerializeBundle(Bundle{}));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->sections.empty());
}

TEST(BundleTest, MissingSectionIsNotFound) {
  Bundle bundle = MakeTestBundle();
  EXPECT_EQ(bundle.Get("nope").status().code(), core::StatusCode::kNotFound);
}

TEST(BundleTest, BadMagicRejected) {
  std::string serialized = SerializeBundle(MakeTestBundle());
  serialized[0] = 'X';
  EXPECT_EQ(ParseBundle(serialized).status().code(),
            core::StatusCode::kInvalidArgument);
}

TEST(BundleTest, VersionSkewIsFailedPrecondition) {
  std::string serialized = SerializeBundle(MakeTestBundle());
  const uint32_t bad_version = 99;
  serialized.replace(4, sizeof(bad_version),
                     reinterpret_cast<const char*>(&bad_version),
                     sizeof(bad_version));
  EXPECT_EQ(ParseBundle(serialized).status().code(),
            core::StatusCode::kFailedPrecondition);
}

TEST(BundleTest, EveryTruncationPrefixRejected) {
  const std::string serialized = SerializeBundle(MakeTestBundle());
  for (size_t len = 0; len < serialized.size(); ++len) {
    auto parsed = ParseBundle(std::string_view(serialized.data(), len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(BundleTest, EverySingleBitFlipDetected) {
  // The file-level CRC covers all bytes after its own field; flips inside
  // the magic/version/CRC fields fail their own checks. No flip anywhere in
  // the file may parse cleanly.
  const std::string serialized = SerializeBundle(MakeTestBundle());
  for (size_t byte = 0; byte < serialized.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = serialized;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      auto parsed = ParseBundle(flipped);
      EXPECT_FALSE(parsed.ok())
          << "flip of bit " << bit << " in byte " << byte << " went undetected";
    }
  }
}

TEST_F(CheckpointTest, SaveLoadLatestRoundTrip) {
  CheckpointManagerOptions options;
  options.dir = dir_;
  CheckpointManager manager(options);
  EXPECT_EQ(manager.LoadLatest().status().code(), core::StatusCode::kNotFound);

  Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(manager.Save(3, bundle).ok());
  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->step, 3);
  EXPECT_EQ(loaded->bundle.sections, bundle.sections);
  EXPECT_EQ(loaded->path, manager.PathForStep(3));
}

TEST_F(CheckpointTest, ListAscendsAndRotationKeepsNewest) {
  CheckpointManagerOptions options;
  options.dir = dir_;
  options.keep_last = 2;
  CheckpointManager manager(options);
  const Bundle bundle = MakeTestBundle();
  for (int64_t step : {1, 5, 3, 9}) {
    ASSERT_TRUE(manager.Save(step, bundle).ok());
  }
  std::vector<CheckpointEntry> entries = manager.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].step, 5);
  EXPECT_EQ(entries[1].step, 9);
  EXPECT_FALSE(fs::exists(manager.PathForStep(1)));
  EXPECT_FALSE(fs::exists(manager.PathForStep(3)));
}

TEST_F(CheckpointTest, ForeignFilesInDirectoryAreIgnored) {
  CheckpointManagerOptions options;
  options.dir = dir_;
  CheckpointManager manager(options);
  ASSERT_TRUE(manager.Save(1, MakeTestBundle()).ok());
  std::ofstream(dir_ + "/notes.txt") << "not a checkpoint";
  std::ofstream(dir_ + "/ckpt-garbage.dckp") << "bad step";
  std::vector<CheckpointEntry> entries = manager.List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].step, 1);
}

TEST_F(CheckpointTest, LoadLatestFallsBackPastCorruptNewest) {
  CheckpointManagerOptions options;
  options.dir = dir_;
  CheckpointManager manager(options);
  Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(manager.Save(1, bundle).ok());
  ASSERT_TRUE(manager.Save(2, bundle).ok());
  // Flip one payload byte in the newest file.
  {
    std::fstream f(manager.PathForStep(2),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('\xff');
  }
  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->step, 1);

  EXPECT_EQ(manager.LoadPath(manager.PathForStep(2)).status().code(),
            core::StatusCode::kInternal);
}

TEST_F(CheckpointTest, CrashMidWriteLeavesPreviousCheckpointIntact) {
  CheckpointManagerOptions options;
  options.dir = dir_;
  CheckpointManager manager(options);
  Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(manager.Save(1, bundle).ok());

  // Kill the write after 10 bytes: Save must fail, the torn temp file must
  // never be published, and step 1 must stay restorable.
  core::FailPoint::Arm("fsio.write_abort", /*arg=*/10, /*fires=*/1);
  EXPECT_EQ(manager.Save(2, bundle).code(), core::StatusCode::kInternal);
  EXPECT_FALSE(fs::exists(manager.PathForStep(2)));
  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->step, 1);
  EXPECT_EQ(loaded->bundle.sections, bundle.sections);
}

TEST_F(CheckpointTest, CrashBeforeRenameLeavesPreviousCheckpointIntact) {
  CheckpointManagerOptions options;
  options.dir = dir_;
  CheckpointManager manager(options);
  Bundle bundle = MakeTestBundle();
  ASSERT_TRUE(manager.Save(1, bundle).ok());

  core::FailPoint::Arm("fsio.rename_fail", /*arg=*/0, /*fires=*/1);
  EXPECT_EQ(manager.Save(2, bundle).code(), core::StatusCode::kInternal);
  EXPECT_FALSE(fs::exists(manager.PathForStep(2)));
  // The fully-written temp is left behind (as a real crash would) but is
  // invisible to List/LoadLatest.
  EXPECT_TRUE(fs::exists(manager.PathForStep(2) + ".tmp"));
  EXPECT_EQ(manager.List().size(), 1u);
  EXPECT_EQ(manager.LoadLatest()->step, 1);
}

TEST_F(CheckpointTest, NegativeStepRejected) {
  CheckpointManagerOptions options;
  options.dir = dir_;
  CheckpointManager manager(options);
  EXPECT_EQ(manager.Save(-1, MakeTestBundle()).code(),
            core::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace darec::ckpt
