#include "theory/theorem1.h"
#include "theory/theorem2.h"

#include <cmath>

#include "gtest/gtest.h"
#include "theory/info.h"

namespace darec::theory {
namespace {

using tensor::Matrix;

TEST(InfoTest, EntropyBasics) {
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  EXPECT_NEAR(Entropy({1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(Entropy({0.25, 0.25, 0.25, 0.25}), std::log(4.0), 1e-12);
  // Unnormalized input is renormalized.
  EXPECT_NEAR(Entropy({2.0, 2.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(Entropy({0.0, 0.0}), 0.0, 1e-12);
}

TEST(InfoTest, MutualInformationIndependent) {
  // Independent uniform bits: I = 0.
  Matrix joint = Matrix::Full(2, 2, 0.25f);
  EXPECT_NEAR(MutualInformation(joint), 0.0, 1e-6);
}

TEST(InfoTest, MutualInformationPerfectlyCorrelated) {
  Matrix joint(2, 2);
  joint(0, 0) = 0.5f;
  joint(1, 1) = 0.5f;
  EXPECT_NEAR(MutualInformation(joint), std::log(2.0), 1e-6);
}

TEST(InfoTest, MutualInformationBinarySymmetricChannel) {
  // X fair, Y = X flipped with prob 0.1:
  // I = ln2 - H_b(0.1) in nats.
  const double e = 0.1;
  Matrix joint(2, 2);
  joint(0, 0) = static_cast<float>(0.5 * (1 - e));
  joint(0, 1) = static_cast<float>(0.5 * e);
  joint(1, 0) = static_cast<float>(0.5 * e);
  joint(1, 1) = static_cast<float>(0.5 * (1 - e));
  const double hb = -e * std::log(e) - (1 - e) * std::log(1 - e);
  EXPECT_NEAR(MutualInformation(joint), std::log(2.0) - hb, 1e-6);
}

TEST(InfoTest, ConditionalEntropyChainRule) {
  Matrix joint(2, 2);
  joint(0, 0) = 0.4f;
  joint(0, 1) = 0.1f;
  joint(1, 0) = 0.2f;
  joint(1, 1) = 0.3f;
  std::vector<double> flat{0.4, 0.1, 0.2, 0.3};
  const double h_joint = Entropy(flat);
  const double h_x = Entropy(RowMarginal(joint));
  const double h_y = Entropy(ColMarginal(joint));
  EXPECT_NEAR(ConditionalEntropy(joint), h_joint - h_x, 1e-9);
  // I(X;Y) = H(Y) - H(Y|X).
  EXPECT_NEAR(MutualInformation(joint), h_y - ConditionalEntropy(joint), 1e-6);
}

TEST(DiscreteWorldTest, ProbabilitiesSumToOne) {
  DiscreteWorld world = MakeDiscreteWorld(DiscreteWorldOptions{});
  double total = 0.0;
  for (double p : world.p) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DiscreteWorldTest, NoiseOrdersInformativeness) {
  DiscreteWorldOptions options;
  options.d_noise = 0.05;
  options.dp_noise = 0.30;
  DiscreteWorld world = MakeDiscreteWorld(options);
  const double i_d = MutualInformation(world.JointDY());
  const double i_dp = MutualInformation(world.JointDpY());
  EXPECT_GT(i_d, i_dp);
  EXPECT_GT(i_d, 0.3);   // 5% channel keeps most of ln2.
  EXPECT_GT(i_dp, 0.01);
}

TEST(Theorem1Test, BoundHoldsAcrossCouplings) {
  for (double coupling : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    DiscreteWorldOptions options;
    options.coupling = coupling;
    DiscreteWorld world = MakeDiscreteWorld(options);
    Theorem1Result result = VerifyTheorem1(world, /*code_cardinality=*/2);
    EXPECT_TRUE(result.bound_holds)
        << "coupling=" << coupling << " excess=" << result.excess_risk
        << " delta_p=" << result.delta_p;
    EXPECT_GE(result.best_aligned_risk, result.h_y_given_inputs - 1e-9);
  }
}

TEST(Theorem1Test, IndependentInputsForceConstantEncoder) {
  // With coupling 0 the support of p(d, d') is full, so exactly aligned
  // encoders are constant and H(Y|E) = H(Y) = ln 2.
  DiscreteWorldOptions options;
  options.coupling = 0.0;
  Theorem1Result result = VerifyTheorem1(MakeDiscreteWorld(options), 2);
  EXPECT_NEAR(result.best_aligned_risk, std::log(2.0), 1e-6);
  EXPECT_GT(result.excess_risk, result.delta_p);
}

TEST(Theorem1Test, FullyCoupledInputsAlignCheaply) {
  // With coupling 1, D' carries the same observation as D; an aligned
  // encoder can read it, so the excess risk is (near) zero, and Δp = 0.
  DiscreteWorldOptions options;
  options.coupling = 1.0;
  options.dp_noise = options.d_noise;  // Same channel by construction.
  Theorem1Result result = VerifyTheorem1(MakeDiscreteWorld(options), 2);
  EXPECT_NEAR(result.delta_p, 0.0, 1e-6);
  EXPECT_NEAR(result.excess_risk, 0.0, 1e-6);
}

TEST(Theorem1Test, GapGrowsWithModalityNoiseAndBoundTightens) {
  // Larger dp_noise -> larger Δp. The measured excess risk (ln 2 −
  // H(Y|D,D') for independent inputs) stays above Δp throughout, with the
  // slack shrinking as the weak modality degrades.
  double prev_delta = -1.0;
  double prev_slack = 1e9;
  for (double dp_noise : {0.10, 0.25, 0.45}) {
    DiscreteWorldOptions options;
    options.coupling = 0.0;
    options.dp_noise = dp_noise;
    Theorem1Result result = VerifyTheorem1(MakeDiscreteWorld(options), 2);
    EXPECT_GT(result.delta_p, prev_delta);
    const double slack = result.excess_risk - result.delta_p;
    EXPECT_GE(slack, -1e-9);
    EXPECT_LT(slack, prev_slack);
    prev_delta = result.delta_p;
    prev_slack = slack;
  }
}

TEST(Theorem2Test, DisentangledKeepsMoreRelevantInformation) {
  for (double coupling : {0.0, 0.5}) {
    DiscreteWorldOptions options;
    options.coupling = coupling;
    Theorem2Result result = VerifyTheorem2(MakeDiscreteWorld(options), 2);
    EXPECT_TRUE(result.more_relevant) << "coupling=" << coupling;
    EXPECT_TRUE(result.less_irrelevant) << "coupling=" << coupling;
  }
}

TEST(Theorem2Test, DisentangledRecoversAllTaskInformation) {
  // The shared observation o_d is a sufficient statistic of D for Y, so
  // I(Ê;Y) == I(D;Y) exactly.
  Theorem2Result result = VerifyTheorem2(MakeDiscreteWorld(DiscreteWorldOptions{}), 2);
  EXPECT_NEAR(result.relevant_disentangled, result.relevant_input, 1e-9);
}

TEST(Theorem2Test, DisentangledStripsNuisanceBit) {
  // D carries one uniform nuisance bit on top of the observation:
  // H(D|Y) - H(Ê|Y) == ln 2.
  Theorem2Result result = VerifyTheorem2(MakeDiscreteWorld(DiscreteWorldOptions{}), 2);
  EXPECT_NEAR(result.irrelevant_input - result.irrelevant_disentangled,
              std::log(2.0), 1e-6);
}

TEST(Theorem2Test, AlignedLosesInformationWhenDecoupled) {
  DiscreteWorldOptions options;
  options.coupling = 0.0;  // Full-support joint -> aligned encoders constant.
  Theorem2Result result = VerifyTheorem2(MakeDiscreteWorld(options), 2);
  EXPECT_NEAR(result.relevant_aligned, 0.0, 1e-6);
  EXPECT_GT(result.relevant_disentangled, 0.3);
}

}  // namespace
}  // namespace darec::theory
