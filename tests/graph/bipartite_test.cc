#include "graph/bipartite.h"

#include <cmath>

#include "core/rng.h"
#include "gtest/gtest.h"

namespace darec::graph {
namespace {

data::Dataset MakeDataset() {
  core::Rng rng(1);
  // 3 users, 4 items; enough interactions that each user keeps >= 2 in train.
  std::vector<data::Interaction> interactions;
  for (int64_t u = 0; u < 3; ++u) {
    for (int64_t i = 0; i < 4; ++i) interactions.push_back({u, i});
  }
  auto ds = data::Dataset::Create("t", 3, 4, interactions, data::SplitRatio{}, rng);
  DARE_CHECK(ds.ok());
  return std::move(ds).value();
}

TEST(BipartiteGraphTest, NodeIndexing) {
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  EXPECT_EQ(g.num_users(), 3);
  EXPECT_EQ(g.num_items(), 4);
  EXPECT_EQ(g.num_nodes(), 7);
  EXPECT_EQ(g.UserNode(2), 2);
  EXPECT_EQ(g.ItemNode(0), 3);
  EXPECT_EQ(g.ItemNode(3), 6);
}

TEST(BipartiteGraphTest, AdjacencyIsSymmetric) {
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  const auto& adj = *g.adjacency();
  EXPECT_EQ(adj.nnz(), 2 * g.num_edges());
  tensor::Matrix dense = adj.ToDense();
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      EXPECT_FLOAT_EQ(dense(r, c), dense(c, r));
    }
  }
  // Bipartite: no user-user or item-item edges.
  for (int64_t u = 0; u < 3; ++u) {
    for (int64_t v = 0; v < 3; ++v) EXPECT_FLOAT_EQ(dense(u, v), 0.0f);
  }
}

TEST(BipartiteGraphTest, EdgesMatchTrainSplit) {
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  EXPECT_EQ(g.edges().size(), ds.train().size());
  for (const data::Interaction& e : g.edges()) {
    EXPECT_TRUE(ds.IsTrainInteraction(e.user, e.item));
  }
}

TEST(BipartiteGraphTest, NormalizedAdjacencyValues) {
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  const auto& adj = *g.adjacency();
  const auto& norm = *g.normalized_adjacency();
  tensor::Matrix degrees = adj.RowSums();
  for (int64_t u = 0; u < g.num_users(); ++u) {
    for (int64_t i = 0; i < g.num_items(); ++i) {
      const int64_t inode = g.ItemNode(i);
      const float a = adj.At(u, inode);
      if (a == 0.0f) continue;
      const float expected =
          1.0f / std::sqrt(degrees(u, 0) * degrees(inode, 0));
      EXPECT_NEAR(norm.At(u, inode), expected, 1e-6f);
    }
  }
}

TEST(BipartiteGraphTest, NormalizedRowSumsBounded) {
  // Spectral radius of the symmetric normalization is <= 1; a cheap proxy:
  // propagating the all-ones vector never blows up.
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  tensor::Matrix ones = tensor::Matrix::Full(g.num_nodes(), 1, 1.0f);
  tensor::Matrix propagated = g.normalized_adjacency()->Multiply(ones);
  for (int64_t r = 0; r < propagated.rows(); ++r) {
    EXPECT_LE(propagated(r, 0), static_cast<float>(g.num_nodes()));
    EXPECT_GE(propagated(r, 0), 0.0f);
  }
}

TEST(BipartiteGraphTest, EdgeDropoutReducesEdges) {
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  core::Rng rng(3);
  auto dropped = g.DroppedNormalizedAdjacency(0.5, rng);
  EXPECT_LT(dropped->nnz(), g.normalized_adjacency()->nnz());
  EXPECT_EQ(dropped->rows(), g.num_nodes());
}

TEST(BipartiteGraphTest, NodeDropoutRemovesIncidentEdges) {
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  core::Rng rng(4);
  auto dropped = g.NodeDroppedNormalizedAdjacency(0.4, rng);
  EXPECT_LE(dropped->nnz(), g.normalized_adjacency()->nnz());
}

TEST(BipartiteGraphTest, MaskedAdjacencyDropsExactEdges) {
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  auto masked = g.MaskedNormalizedAdjacency({0, 1});
  EXPECT_EQ(masked->nnz(), 2 * (g.num_edges() - 2));
  // The masked edges' endpoints are no longer connected.
  const data::Interaction& e0 = g.edges()[0];
  EXPECT_FLOAT_EQ(masked->At(g.UserNode(e0.user), g.ItemNode(e0.item)), 0.0f);
}

TEST(BipartiteGraphTest, DropAllZeroProbKeepsEverything) {
  data::Dataset ds = MakeDataset();
  BipartiteGraph g(ds);
  core::Rng rng(5);
  auto kept = g.DroppedNormalizedAdjacency(0.0, rng);
  EXPECT_EQ(kept->nnz(), g.normalized_adjacency()->nnz());
}

}  // namespace
}  // namespace darec::graph
