#include "darec/matching.h"

#include <algorithm>
#include <set>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"

namespace darec::model {
namespace {

using tensor::Matrix;

void ExpectBijective(const CenterMatching& m, int64_t k) {
  ASSERT_EQ(m.left.size(), static_cast<size_t>(k));
  ASSERT_EQ(m.right.size(), static_cast<size_t>(k));
  std::set<int64_t> lefts(m.left.begin(), m.left.end());
  std::set<int64_t> rights(m.right.begin(), m.right.end());
  EXPECT_EQ(lefts.size(), static_cast<size_t>(k));
  EXPECT_EQ(rights.size(), static_cast<size_t>(k));
}

TEST(GreedyMatchTest, IdentityWhenDiagonalDominates) {
  Matrix dist = Matrix::Full(3, 3, 10.0f);
  for (int64_t i = 0; i < 3; ++i) dist(i, i) = static_cast<float>(i) * 0.1f;
  CenterMatching m = GreedyMatchCenters(dist);
  ExpectBijective(m, 3);
  for (size_t k = 0; k < 3; ++k) EXPECT_EQ(m.left[k], m.right[k]);
}

TEST(GreedyMatchTest, PicksClosestPairsFirst) {
  // dist: pair (0,1) is globally closest, then (1,0).
  Matrix dist = Matrix::FromVector(2, 2, {5.0f, 1.0f, 2.0f, 6.0f});
  CenterMatching m = GreedyMatchCenters(dist);
  ExpectBijective(m, 2);
  EXPECT_EQ(m.left[0], 0);
  EXPECT_EQ(m.right[0], 1);
  EXPECT_EQ(m.left[1], 1);
  EXPECT_EQ(m.right[1], 0);
}

TEST(GreedyMatchTest, PermutedCentersRecovered) {
  // Centers of B are a permutation of A; greedy must recover it exactly.
  core::Rng rng(3);
  Matrix a = tensor::RandomNormal(5, 4, 1.0f, rng);
  std::vector<int64_t> perm{3, 0, 4, 1, 2};
  Matrix b(5, 4);
  for (int64_t i = 0; i < 5; ++i) b.CopyRowFrom(a, perm[i], i);
  Matrix dist = CenterDistances(a, b);
  CenterMatching m = GreedyMatchCenters(dist);
  ExpectBijective(m, 5);
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(perm[m.right[k]], m.left[k]);
    EXPECT_NEAR(dist(m.left[k], m.right[k]), 0.0f, 1e-5f);
  }
}

TEST(HungarianMatchTest, OptimalOnSmallExample) {
  // Classic example where greedy is suboptimal:
  //   greedy picks (0,0)=1 then forced (1,1)=10 -> total 11;
  //   optimal is (0,1)=2 + (1,0)=3 -> total 5.
  Matrix dist = Matrix::FromVector(2, 2, {1.0f, 2.0f, 3.0f, 10.0f});
  CenterMatching greedy = GreedyMatchCenters(dist);
  CenterMatching optimal = HungarianMatchCenters(dist);
  ExpectBijective(optimal, 2);
  EXPECT_DOUBLE_EQ(greedy.TotalCost(dist), 11.0);
  EXPECT_DOUBLE_EQ(optimal.TotalCost(dist), 5.0);
}

TEST(HungarianMatchTest, NeverWorseThanGreedy) {
  core::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t k = 2 + rng.UniformInt(8);
    Matrix a = tensor::RandomNormal(k, 3, 1.0f, rng);
    Matrix b = tensor::RandomNormal(k, 3, 1.0f, rng);
    Matrix dist = CenterDistances(a, b);
    CenterMatching greedy = GreedyMatchCenters(dist);
    CenterMatching optimal = HungarianMatchCenters(dist);
    ExpectBijective(greedy, k);
    ExpectBijective(optimal, k);
    EXPECT_LE(optimal.TotalCost(dist), greedy.TotalCost(dist) + 1e-6);
  }
}

TEST(CenterDistancesTest, EuclideanValues) {
  Matrix a = Matrix::FromVector(1, 2, {0, 0});
  Matrix b = Matrix::FromVector(2, 2, {3, 4, 1, 0});
  Matrix dist = CenterDistances(a, b);
  EXPECT_NEAR(dist(0, 0), 5.0f, 1e-6f);
  EXPECT_NEAR(dist(0, 1), 1.0f, 1e-6f);
}

TEST(MatchingTest, SingleCenterTrivial) {
  Matrix dist = Matrix::Full(1, 1, 2.5f);
  CenterMatching g = GreedyMatchCenters(dist);
  CenterMatching h = HungarianMatchCenters(dist);
  EXPECT_EQ(g.left, std::vector<int64_t>{0});
  EXPECT_EQ(h.right, std::vector<int64_t>{0});
  EXPECT_DOUBLE_EQ(g.TotalCost(dist), 2.5);
}

}  // namespace
}  // namespace darec::model
