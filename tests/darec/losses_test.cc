#include "darec/losses.h"

#include <cmath>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "test_util.h"

namespace darec::model {
namespace {

using tensor::Matrix;
using tensor::Variable;

TEST(OrthogonalityLossTest, ZeroForOrthogonalRows) {
  Variable a = Variable::Parameter(Matrix::FromVector(2, 2, {1, 0, 0, 1}));
  Variable b = Variable::Parameter(Matrix::FromVector(2, 2, {0, 1, 1, 0}));
  EXPECT_NEAR(OrthogonalityLoss(a, b).scalar(), 0.0f, 1e-6f);
}

TEST(OrthogonalityLossTest, OneForParallelRows) {
  Variable a = Variable::Parameter(Matrix::FromVector(2, 2, {1, 1, 2, 0}));
  Variable b = Variable::Parameter(Matrix::FromVector(2, 2, {2, 2, 5, 0}));
  EXPECT_NEAR(OrthogonalityLoss(a, b).scalar(), 1.0f, 1e-5f);
  // Anti-parallel also penalized (cosine squared).
  Variable c = Variable::Parameter(Matrix::FromVector(2, 2, {-1, -1, -2, 0}));
  EXPECT_NEAR(OrthogonalityLoss(a, c).scalar(), 1.0f, 1e-5f);
}

TEST(OrthogonalityLossTest, GradientCheck) {
  core::Rng rng(1);
  std::vector<Variable> params{
      Variable::Parameter(tensor::RandomNormal(4, 3, 1.0f, rng)),
      Variable::Parameter(tensor::RandomNormal(4, 3, 1.0f, rng))};
  darec::testing::ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return OrthogonalityLoss(p[0], p[1]); },
      params);
}

TEST(OrthogonalityLossTest, MinimizationDecorrelates) {
  core::Rng rng(2);
  Variable a = Variable::Parameter(tensor::RandomNormal(8, 4, 1.0f, rng));
  Variable b = Variable::Parameter(tensor::RandomNormal(8, 4, 1.0f, rng));
  tensor::Adam adam({a, b}, 0.05f);
  const float initial = OrthogonalityLoss(a, b).scalar();
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    Backward(OrthogonalityLoss(a, b));
    adam.Step();
  }
  EXPECT_LT(OrthogonalityLoss(a, b).scalar(), initial * 0.05f);
}

TEST(UniformityLossTest, CollapsedPointsScoreHigh) {
  // Identical rows -> pairwise distance 0 -> log E exp(0) = 0, the maximum.
  Variable collapsed = Variable::Parameter(Matrix::Full(6, 4, 1.0f));
  EXPECT_NEAR(UniformityLoss(collapsed).scalar(), 0.0f, 1e-5f);

  // Antipodal points on the sphere: distance² = 4 -> well below 0.
  Matrix spread(2, 2);
  spread(0, 0) = 1.0f;
  spread(1, 0) = -1.0f;
  Variable v = Variable::Parameter(spread);
  EXPECT_LT(UniformityLoss(v).scalar(), -7.0f);
}

TEST(UniformityLossTest, GradientCheck) {
  core::Rng rng(3);
  std::vector<Variable> params{
      Variable::Parameter(tensor::RandomNormal(5, 3, 1.0f, rng))};
  darec::testing::ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return UniformityLoss(p[0]); }, params);
}

TEST(UniformityLossTest, MinimizationSpreadsPoints) {
  core::Rng rng(4);
  // Start clustered tightly; optimizing uniformity should spread them.
  Variable x = Variable::Parameter(tensor::RandomNormal(10, 3, 0.01f, rng));
  tensor::Adam adam({x}, 0.05f);
  const float initial = UniformityLoss(x).scalar();
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    Backward(UniformityLoss(x));
    adam.Step();
  }
  EXPECT_LT(UniformityLoss(x).scalar(), initial - 1.0f);
}

TEST(GlobalStructureLossTest, ZeroWhenStructuresMatch) {
  core::Rng rng(5);
  Matrix base = tensor::RandomNormal(6, 4, 1.0f, rng);
  Variable a = Variable::Parameter(base);
  // Scaling rows does not change the normalized similarity structure.
  Matrix scaled = base;
  scaled.ScaleInPlace(3.0f);
  Variable b = Variable::Parameter(scaled);
  EXPECT_NEAR(GlobalStructureLoss(a, b).scalar(), 0.0f, 1e-6f);
}

TEST(GlobalStructureLossTest, PositiveWhenStructuresDiffer) {
  core::Rng rng(6);
  Variable a = Variable::Parameter(tensor::RandomNormal(6, 4, 1.0f, rng));
  Variable b = Variable::Parameter(tensor::RandomNormal(6, 4, 1.0f, rng));
  EXPECT_GT(GlobalStructureLoss(a, b).scalar(), 0.01f);
}

TEST(GlobalStructureLossTest, GradientCheck) {
  core::Rng rng(7);
  std::vector<Variable> params{
      Variable::Parameter(tensor::RandomNormal(4, 3, 1.0f, rng)),
      Variable::Parameter(tensor::RandomNormal(4, 3, 1.0f, rng))};
  darec::testing::ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        return GlobalStructureLoss(p[0], p[1]);
      },
      params);
}

TEST(GlobalStructureLossTest, MinimizationAlignsStructures) {
  core::Rng rng(8);
  Matrix target = tensor::RandomNormal(8, 4, 1.0f, rng);
  Variable fixed = Variable::Constant(target);
  Variable moving = Variable::Parameter(tensor::RandomNormal(8, 4, 1.0f, rng));
  tensor::Adam adam({moving}, 0.02f);
  const float initial = GlobalStructureLoss(moving, fixed).scalar();
  for (int step = 0; step < 400; ++step) {
    adam.ZeroGrad();
    Backward(GlobalStructureLoss(moving, fixed));
    adam.Step();
  }
  EXPECT_LT(GlobalStructureLoss(moving, fixed).scalar(), initial * 0.1f);
}

TEST(GlobalStructureLossSoftmaxTest, LowerWhenStructuresMatch) {
  core::Rng rng(20);
  Matrix base = tensor::RandomNormal(10, 4, 1.0f, rng);
  Variable a = Variable::Parameter(base);
  Variable b = Variable::Parameter(base);
  Variable c = Variable::Parameter(tensor::RandomNormal(10, 4, 1.0f, rng));
  const float same = GlobalStructureLossSoftmax(a, b, 0.5f).scalar();
  const float different = GlobalStructureLossSoftmax(a, c, 0.5f).scalar();
  EXPECT_LT(same, different);
}

TEST(GlobalStructureLossSoftmaxTest, TeacherSideIsDetached) {
  core::Rng rng(21);
  Variable student = Variable::Parameter(tensor::RandomNormal(6, 3, 1.0f, rng));
  Variable teacher = Variable::Parameter(tensor::RandomNormal(6, 3, 1.0f, rng));
  Backward(GlobalStructureLossSoftmax(student, teacher, 0.5f));
  EXPECT_FALSE(student.grad().empty());
  EXPECT_TRUE(teacher.grad().empty());
}

TEST(GlobalStructureLossSoftmaxTest, GradientCheck) {
  core::Rng rng(22);
  std::vector<Variable> params{
      Variable::Parameter(tensor::RandomNormal(5, 3, 1.0f, rng))};
  Variable teacher = Variable::Constant(tensor::RandomNormal(5, 3, 1.0f, rng));
  darec::testing::ExpectGradientsMatch(
      [&teacher](const std::vector<Variable>& p) {
        return GlobalStructureLossSoftmax(p[0], teacher, 0.5f);
      },
      params);
}

TEST(GlobalStructureLossSoftmaxTest, MinimizationAlignsNeighborStructure) {
  core::Rng rng(23);
  Variable teacher = Variable::Constant(tensor::RandomNormal(12, 4, 1.0f, rng));
  Variable student = Variable::Parameter(tensor::RandomNormal(12, 4, 1.0f, rng));
  tensor::Adam adam({student}, 0.05f);
  const float initial = GlobalStructureLossSoftmax(student, teacher, 0.5f).scalar();
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    Backward(GlobalStructureLossSoftmax(student, teacher, 0.5f));
    adam.Step();
  }
  EXPECT_LT(GlobalStructureLossSoftmax(student, teacher, 0.5f).scalar(),
            initial * 0.8f);
}

/// Two tight blobs near the given 3-D centers.
Matrix BlobsAt(core::Rng& rng, const float c0[3], const float c1[3]) {
  Matrix points(20, 3);
  for (int64_t i = 0; i < 20; ++i) {
    const float* center = i < 10 ? c0 : c1;
    for (int64_t d = 0; d < 3; ++d) {
      points(i, d) = center[d] + static_cast<float>(rng.Normal(0.0, 0.05));
    }
  }
  return points;
}

TEST(LocalStructureLossTest, MatchedClustersScoreLow) {
  core::Rng rng(9);
  // Cloud with mutually-orthogonal cluster directions: for identical
  // inputs the matched (diagonal) centers agree exactly and the unmatched
  // pairs are already orthogonal, so the loss is near zero.
  const float ex[3] = {5, 0, 0};
  const float ey[3] = {0, 5, 0};
  Matrix ortho = BlobsAt(rng, ex, ey);
  Variable a = Variable::Parameter(ortho);
  Variable b = Variable::Parameter(ortho);
  core::Rng loss_rng1(1), loss_rng2(1);
  const float same =
      LocalStructureLoss(a, b, 2, MatchingStrategy::kGreedy, 20, loss_rng1).scalar();
  EXPECT_LT(same, 0.05f);

  // A cloud whose two clusters both point along +x: one matched pair is
  // badly aligned, so the loss must be clearly larger.
  const float ex2[3] = {4.9f, 1, 0};
  Variable c = Variable::Parameter(BlobsAt(rng, ex, ex2));
  const float different =
      LocalStructureLoss(a, c, 2, MatchingStrategy::kGreedy, 20, loss_rng2).scalar();
  EXPECT_GT(different, same + 0.1f);
}

TEST(LocalStructureLossTest, GradientsFlowToBothInputs) {
  core::Rng rng(10);
  Variable a = Variable::Parameter(tensor::RandomNormal(12, 3, 1.0f, rng));
  Variable b = Variable::Parameter(tensor::RandomNormal(12, 3, 1.0f, rng));
  core::Rng loss_rng(2);
  Variable loss =
      LocalStructureLoss(a, b, 3, MatchingStrategy::kGreedy, 10, loss_rng);
  Backward(loss);
  EXPECT_FALSE(a.grad().empty());
  EXPECT_FALSE(b.grad().empty());
}

TEST(LocalStructureLossTest, HungarianStrategyWorks) {
  core::Rng rng(11);
  Variable a = Variable::Parameter(tensor::RandomNormal(12, 3, 1.0f, rng));
  Variable b = Variable::Parameter(tensor::RandomNormal(12, 3, 1.0f, rng));
  core::Rng loss_rng(3);
  Variable loss =
      LocalStructureLoss(a, b, 3, MatchingStrategy::kHungarian, 10, loss_rng);
  EXPECT_TRUE(std::isfinite(loss.scalar()));
}

TEST(LocalStructureLossTest, ClampsKToRows) {
  core::Rng rng(12);
  Variable a = Variable::Parameter(tensor::RandomNormal(3, 2, 1.0f, rng));
  Variable b = Variable::Parameter(tensor::RandomNormal(3, 2, 1.0f, rng));
  core::Rng loss_rng(4);
  // K = 100 > 3 rows must not crash.
  Variable loss =
      LocalStructureLoss(a, b, 100, MatchingStrategy::kGreedy, 5, loss_rng);
  EXPECT_TRUE(std::isfinite(loss.scalar()));
}

TEST(LocalStructureLossTest, SingleClusterOnlyDiagonalTerm) {
  core::Rng rng(13);
  Variable a = Variable::Parameter(tensor::RandomNormal(6, 2, 1.0f, rng));
  core::Rng loss_rng(5);
  Variable loss = LocalStructureLoss(a, a, 1, MatchingStrategy::kGreedy, 5,
                                     loss_rng);
  // Centers are identical -> cosine 1 -> (1-1)² = 0.
  EXPECT_NEAR(loss.scalar(), 0.0f, 1e-6f);
}

}  // namespace
}  // namespace darec::model
