#include "darec/darec.h"

#include <cmath>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace darec::model {
namespace {

using tensor::Matrix;
using tensor::Variable;

constexpr int64_t kNodes = 64;
constexpr int64_t kCfDim = 8;
constexpr int64_t kLlmDim = 12;

DaRecOptions SmallOptions() {
  DaRecOptions options;
  options.sample_size = 32;
  options.uniformity_sample = 16;
  options.num_clusters = 3;
  options.projection_dim = 8;
  options.hidden_dim = 16;
  options.kmeans_iterations = 5;
  return options;
}

Matrix MakeLlm(core::Rng& rng) {
  return tensor::RandomNormal(kNodes, kLlmDim, 1.0f, rng);
}

TEST(DaRecAlignerTest, LossIsFinitePositiveWeighted) {
  core::Rng rng(1);
  DaRecAligner aligner(MakeLlm(rng), kCfDim, SmallOptions());
  Variable nodes = Variable::Parameter(tensor::RandomNormal(kNodes, kCfDim, 1.0f, rng));
  Variable loss = aligner.Loss(nodes, rng);
  ASSERT_FALSE(loss.IsNull());
  EXPECT_TRUE(std::isfinite(loss.scalar()));
}

TEST(DaRecAlignerTest, GradientsReachNodesAndProjectors) {
  core::Rng rng(2);
  DaRecAligner aligner(MakeLlm(rng), kCfDim, SmallOptions());
  Variable nodes = Variable::Parameter(tensor::RandomNormal(kNodes, kCfDim, 1.0f, rng));
  Variable loss = aligner.Loss(nodes, rng);
  Backward(loss);
  EXPECT_FALSE(nodes.grad().empty());
  // 4 single-layer projectors x (weight + bias) = 8 parameters.
  std::vector<Variable> params = aligner.Params();
  EXPECT_EQ(params.size(), 8u);
  int with_grad = 0;
  for (const Variable& p : params) with_grad += !p.grad().empty();
  EXPECT_EQ(with_grad, 8);
}

TEST(DaRecAlignerTest, TwoLayerProjectorsHave16Params) {
  core::Rng rng(21);
  DaRecOptions options = SmallOptions();
  options.projector_layers = 2;
  options.llm_projector_layers = 2;
  DaRecAligner aligner(MakeLlm(rng), kCfDim, options);
  EXPECT_EQ(aligner.Params().size(), 16u);
}

TEST(DaRecAlignerTest, LambdaScalesLoss) {
  core::Rng rng1(3), rng2(3);
  DaRecOptions small = SmallOptions();
  DaRecOptions big = SmallOptions();
  big.lambda = small.lambda * 10.0f;
  core::Rng data_rng(4);
  Matrix llm = MakeLlm(data_rng);
  Matrix cf = tensor::RandomNormal(kNodes, kCfDim, 1.0f, data_rng);
  DaRecAligner a_small(llm, kCfDim, small);
  DaRecAligner a_big(llm, kCfDim, big);
  Variable nodes1 = Variable::Parameter(cf);
  Variable nodes2 = Variable::Parameter(cf);
  const float l_small = a_small.Loss(nodes1, rng1).scalar();
  const float l_big = a_big.Loss(nodes2, rng2).scalar();
  EXPECT_NEAR(l_big, 10.0f * l_small, std::fabs(l_small) * 0.05f + 1e-4f);
}

/// Ablation toggles: disabling every term yields a null loss; disabling a
/// single term changes the value.
TEST(DaRecAlignerTest, AblationTogglesChangeLoss) {
  core::Rng data_rng(5);
  Matrix llm = MakeLlm(data_rng);
  Matrix cf = tensor::RandomNormal(kNodes, kCfDim, 1.0f, data_rng);

  auto loss_with = [&](bool orth, bool uni, bool glo, bool loc) {
    DaRecOptions options = SmallOptions();
    options.enable_orthogonality = orth;
    options.enable_uniformity = uni;
    options.enable_global = glo;
    options.enable_local = loc;
    DaRecAligner aligner(llm, kCfDim, options);
    Variable nodes = Variable::Parameter(cf);
    core::Rng rng(6);
    Variable loss = aligner.Loss(nodes, rng);
    return loss.IsNull() ? std::optional<float>() : loss.scalar();
  };

  EXPECT_FALSE(loss_with(false, false, false, false).has_value());
  auto full = loss_with(true, true, true, true);
  ASSERT_TRUE(full.has_value());
  for (int drop = 0; drop < 4; ++drop) {
    auto reduced = loss_with(drop != 0, drop != 1, drop != 2, drop != 3);
    ASSERT_TRUE(reduced.has_value());
    EXPECT_NE(*reduced, *full) << "dropping term " << drop << " had no effect";
  }
}

TEST(DaRecAlignerTest, ProjectShapes) {
  core::Rng rng(7);
  DaRecAligner aligner(MakeLlm(rng), kCfDim, SmallOptions());
  Matrix cf = tensor::RandomNormal(kNodes, kCfDim, 1.0f, rng);
  DisentangledViews views = aligner.Project(cf);
  EXPECT_EQ(views.cf_shared.rows(), kNodes);
  EXPECT_EQ(views.cf_shared.cols(), SmallOptions().projection_dim);
  EXPECT_EQ(views.llm_specific.rows(), kNodes);

  DisentangledViews sampled = aligner.Project(cf, {0, 5, 9});
  EXPECT_EQ(sampled.cf_shared.rows(), 3);
  EXPECT_EQ(sampled.llm_shared.rows(), 3);
}

TEST(DaRecAlignerTest, AugmentNodesIsIdentity) {
  core::Rng rng(8);
  DaRecAligner aligner(MakeLlm(rng), kCfDim, SmallOptions());
  Variable nodes = Variable::Constant(tensor::RandomNormal(kNodes, kCfDim, 1.0f, rng));
  Variable augmented = aligner.AugmentNodes(nodes);
  EXPECT_TRUE(tensor::AllClose(augmented.value(), nodes.value()));
}

TEST(DaRecAlignerTest, TrainingReducesAlignmentLoss) {
  // Optimizing only the DaRec loss over the projectors and a free CF table
  // must drive it down — the disentangle-and-align objective is learnable.
  core::Rng rng(9);
  Matrix llm = MakeLlm(rng);
  DaRecOptions options = SmallOptions();
  DaRecAligner aligner(llm, kCfDim, options);
  Variable nodes = Variable::Parameter(tensor::RandomNormal(kNodes, kCfDim, 1.0f, rng));

  std::vector<Variable> params = aligner.Params();
  params.push_back(nodes);
  tensor::Adam adam(params, 0.01f);

  core::Rng step_rng(10);
  double first = 0.0, last = 0.0;
  const int steps = 60;
  for (int step = 0; step < steps; ++step) {
    adam.ZeroGrad();
    Variable loss = aligner.Loss(nodes, step_rng);
    if (step == 0) first = loss.scalar();
    if (step == steps - 1) last = loss.scalar();
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, first);
}

TEST(DaRecAlignerTest, SampleSizeClampedToNodes) {
  core::Rng rng(11);
  DaRecOptions options = SmallOptions();
  options.sample_size = 10000;  // Far more than kNodes.
  DaRecAligner aligner(MakeLlm(rng), kCfDim, options);
  Variable nodes = Variable::Parameter(tensor::RandomNormal(kNodes, kCfDim, 1.0f, rng));
  Variable loss = aligner.Loss(nodes, rng);
  EXPECT_TRUE(std::isfinite(loss.scalar()));
}

}  // namespace
}  // namespace darec::model
