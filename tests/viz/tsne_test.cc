#include "viz/tsne.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"

namespace darec::viz {
namespace {

using tensor::Matrix;

/// Two well-separated blobs in 10-D.
Matrix MakeBlobs(core::Rng& rng, int64_t per_blob) {
  Matrix points(2 * per_blob, 10);
  for (int64_t i = 0; i < 2 * per_blob; ++i) {
    const float offset = i < per_blob ? 4.0f : -4.0f;
    for (int64_t c = 0; c < 10; ++c) {
      points(i, c) = (c == 0 ? offset : 0.0f) +
                     static_cast<float>(rng.Normal(0.0, 0.3));
    }
  }
  return points;
}

TsneOptions FastOptions() {
  TsneOptions options;
  options.iterations = 150;
  options.perplexity = 10.0;
  options.exaggeration_iters = 40;
  return options;
}

TEST(TsneTest, OutputShape) {
  core::Rng rng(1);
  Matrix points = MakeBlobs(rng, 40);
  Matrix embedding = RunTsne(points, FastOptions());
  EXPECT_EQ(embedding.rows(), 80);
  EXPECT_EQ(embedding.cols(), 2);
}

TEST(TsneTest, SeparatedBlobsStaySeparated) {
  core::Rng rng(2);
  const int64_t per_blob = 40;
  Matrix points = MakeBlobs(rng, per_blob);
  Matrix embedding = RunTsne(points, FastOptions());

  // Mean intra-blob distance must be well below inter-blob distance.
  auto mean_dist = [&](int64_t a_begin, int64_t a_end, int64_t b_begin,
                       int64_t b_end) {
    double total = 0.0;
    int64_t count = 0;
    for (int64_t i = a_begin; i < a_end; ++i) {
      for (int64_t j = b_begin; j < b_end; ++j) {
        if (i == j) continue;
        const double dx = double(embedding(i, 0)) - embedding(j, 0);
        const double dy = double(embedding(i, 1)) - embedding(j, 1);
        total += std::sqrt(dx * dx + dy * dy);
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  const double intra = (mean_dist(0, per_blob, 0, per_blob) +
                        mean_dist(per_blob, 2 * per_blob, per_blob, 2 * per_blob)) /
                       2.0;
  const double inter = mean_dist(0, per_blob, per_blob, 2 * per_blob);
  EXPECT_GT(inter, 1.5 * intra);
}

TEST(TsneTest, EmbeddingIsCentered) {
  core::Rng rng(3);
  Matrix points = MakeBlobs(rng, 30);
  Matrix embedding = RunTsne(points, FastOptions());
  for (int64_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (int64_t i = 0; i < embedding.rows(); ++i) mean += embedding(i, c);
    mean /= static_cast<double>(embedding.rows());
    EXPECT_NEAR(mean, 0.0, 1e-3);
  }
}

TEST(TsneTest, DeterministicPerSeed) {
  core::Rng rng(4);
  Matrix points = MakeBlobs(rng, 20);
  TsneOptions options = FastOptions();
  options.iterations = 50;
  Matrix a = RunTsne(points, options);
  Matrix b = RunTsne(points, options);
  EXPECT_TRUE(tensor::AllClose(a, b));
}

TEST(WriteEmbeddingCsvTest, WritesRowsWithLabels) {
  Matrix embedding = Matrix::FromVector(2, 2, {1.5f, -2.0f, 3.0f, 4.0f});
  const std::string path = ::testing::TempDir() + "/tsne_test.csv";
  auto status = WriteEmbeddingCsv(path, embedding, {7, 9});
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "1.5,-2,7");
  EXPECT_EQ(line2, "3,4,9");
  std::remove(path.c_str());
}

TEST(WriteEmbeddingCsvTest, RejectsMismatchedLabels) {
  Matrix embedding(3, 2);
  EXPECT_FALSE(WriteEmbeddingCsv("/tmp/x.csv", embedding, {1}).ok());
}

TEST(WriteEmbeddingCsvTest, RejectsUnwritablePath) {
  Matrix embedding(1, 2);
  EXPECT_FALSE(WriteEmbeddingCsv("/nonexistent_dir/x.csv", embedding, {}).ok());
}

}  // namespace
}  // namespace darec::viz
