// Cross-module integration tests: full pipeline runs at unit-test scale,
// asserting the structural invariants that the paper's experiments rely
// on rather than exact metric values (which are seed-dependent).
#include <cmath>
#include <set>

#include "cluster/kmeans.h"
#include "darec/matching.h"
#include "data/presets.h"
#include "gtest/gtest.h"
#include "pipeline/experiment.h"
#include "pipeline/specs.h"
#include "tensor/io.h"
#include "viz/tsne.h"

namespace darec {
namespace {

pipeline::ExperimentSpec FastSpec(const std::string& variant) {
  pipeline::ExperimentSpec spec = pipeline::CalibratedSpec("tiny", "lightgcn", variant);
  spec.train_options.epochs = 6;
  spec.train_options.batch_size = 512;
  spec.darec_options.sample_size = 96;
  spec.darec_options.uniformity_sample = 64;
  spec.darec_options.kmeans_iterations = 5;
  spec.rlmrec_options.sample_size = 96;
  spec.llm_options.output_dim = 32;
  return spec;
}

TEST(EndToEndTest, DaRecTrainsAndImprovesOverUntrained) {
  auto experiment = pipeline::Experiment::Create(FastSpec("darec"));
  ASSERT_TRUE(experiment.ok());
  const double untrained =
      (*experiment)->trainer().Evaluate(eval::EvalSplit::kTest).recall.at(20);
  pipeline::TrainResult result = (*experiment)->Run();
  EXPECT_GT(result.test_metrics.recall.at(20), untrained);
  // Losses finite and generally decreasing (first vs last).
  EXPECT_TRUE(std::isfinite(result.epoch_losses.front()));
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front() + 0.05);
}

TEST(EndToEndTest, SharedSpacesBecomeAlignedAtClusterLevel) {
  // After training, k-means clusters of the CF-shared and LLM-shared
  // spaces must agree far better than chance (the Fig. 6 phenomenon).
  pipeline::ExperimentSpec spec = FastSpec("darec");
  spec.train_options.epochs = 25;
  auto experiment = pipeline::Experiment::Create(spec);
  ASSERT_TRUE(experiment.ok());
  pipeline::TrainResult result = (*experiment)->Run();
  model::DisentangledViews views =
      (*experiment)->darec()->Project(result.final_embeddings);

  core::Rng rng(5);
  cluster::KMeansOptions kopts;
  kopts.num_clusters = 3;
  auto cf = cluster::RunKMeans(tensor::RowNormalize(views.cf_shared.value()),
                               kopts, rng);
  auto llm = cluster::RunKMeans(tensor::RowNormalize(views.llm_shared.value()),
                                kopts, rng);
  tensor::Matrix cooccurrence(3, 3);
  for (size_t i = 0; i < cf.assignments.size(); ++i) {
    cooccurrence(cf.assignments[i], llm.assignments[i]) += 1.0f;
  }
  model::CenterMatching matching =
      model::HungarianMatchCenters(tensor::Scale(cooccurrence, -1.0f));
  double agree = 0.0;
  for (size_t k = 0; k < matching.left.size(); ++k) {
    agree += cooccurrence(matching.left[k], matching.right[k]);
  }
  const double rate = agree / static_cast<double>(cf.assignments.size());
  EXPECT_GT(rate, 0.40) << "chance is ~0.33 for K=3";
}

TEST(EndToEndTest, EmbeddingsSurviveSaveLoadAndEvaluateIdentically) {
  auto experiment = pipeline::Experiment::Create(FastSpec("baseline"));
  ASSERT_TRUE(experiment.ok());
  pipeline::TrainResult result = (*experiment)->Run();

  const std::string path = ::testing::TempDir() + "/e2e_embeddings.dmat";
  ASSERT_TRUE(tensor::SaveMatrix(path, result.final_embeddings).ok());
  auto loaded = tensor::LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());

  eval::MetricSet original =
      eval::EvaluateRanking(result.final_embeddings, (*experiment)->dataset());
  eval::MetricSet reloaded =
      eval::EvaluateRanking(*loaded, (*experiment)->dataset());
  EXPECT_DOUBLE_EQ(original.recall.at(20), reloaded.recall.at(20));
  EXPECT_DOUBLE_EQ(original.ndcg.at(10), reloaded.ndcg.at(10));
  std::remove(path.c_str());
}

TEST(EndToEndTest, DeterministicAcrossProcessesGivenSeed) {
  auto a = pipeline::RunExperiment(FastSpec("darec"));
  auto b = pipeline::RunExperiment(FastSpec("darec"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->epoch_losses.size(), b->epoch_losses.size());
  for (size_t e = 0; e < a->epoch_losses.size(); ++e) {
    EXPECT_DOUBLE_EQ(a->epoch_losses[e], b->epoch_losses[e]) << "epoch " << e;
  }
  EXPECT_DOUBLE_EQ(a->test_metrics.recall.at(20), b->test_metrics.recall.at(20));
}

TEST(EndToEndTest, ExtendedVariantsTrain) {
  for (const std::string& variant : pipeline::ExtendedVariantNames()) {
    pipeline::ExperimentSpec spec = FastSpec(variant);
    spec.train_options.epochs = 2;
    auto result = pipeline::RunExperiment(spec);
    ASSERT_TRUE(result.ok()) << variant;
    for (double loss : result->epoch_losses) {
      EXPECT_TRUE(std::isfinite(loss)) << variant;
    }
  }
}

TEST(EndToEndTest, TsneOnTrainedSharedSpaceRuns) {
  auto experiment = pipeline::Experiment::Create(FastSpec("darec"));
  ASSERT_TRUE(experiment.ok());
  pipeline::TrainResult result = (*experiment)->Run();
  core::Rng rng(7);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(
      (*experiment)->dataset().num_nodes(), 80);
  model::DisentangledViews views =
      (*experiment)->darec()->Project(result.final_embeddings, sample);
  viz::TsneOptions options;
  options.iterations = 60;
  options.perplexity = 10.0;
  tensor::Matrix embedding = viz::RunTsne(views.cf_shared.value(), options);
  EXPECT_EQ(embedding.rows(), 80);
  EXPECT_EQ(embedding.cols(), 2);
  for (int64_t r = 0; r < embedding.rows(); ++r) {
    EXPECT_TRUE(std::isfinite(embedding(r, 0)));
    EXPECT_TRUE(std::isfinite(embedding(r, 1)));
  }
}

}  // namespace
}  // namespace darec
