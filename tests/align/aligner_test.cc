#include "align/aligner.h"

#include <cmath>

#include "align/controlrec.h"
#include "align/ctrl.h"
#include "align/kar.h"
#include "align/rlmrec.h"
#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace darec::align {
namespace {

using tensor::Matrix;
using tensor::Variable;

constexpr int64_t kNodes = 48;
constexpr int64_t kCfDim = 8;
constexpr int64_t kLlmDim = 16;

Matrix MakeLlm(uint64_t seed = 1) {
  core::Rng rng(seed);
  return tensor::RandomNormal(kNodes, kLlmDim, 1.0f, rng);
}

Variable MakeNodes(uint64_t seed = 2) {
  core::Rng rng(seed);
  return Variable::Parameter(tensor::RandomNormal(kNodes, kCfDim, 1.0f, rng));
}

TEST(NullAlignerTest, NoLossNoParams) {
  NullAligner aligner;
  core::Rng rng(1);
  Variable nodes = MakeNodes();
  EXPECT_TRUE(aligner.Loss(nodes, rng).IsNull());
  EXPECT_TRUE(aligner.Params().empty());
  EXPECT_TRUE(tensor::AllClose(aligner.AugmentNodes(nodes).value(), nodes.value()));
  EXPECT_EQ(aligner.name(), "baseline");
}

TEST(RlmrecConTest, LossFiniteAndWeighted) {
  RlmrecOptions options;
  options.sample_size = 24;
  RlmrecCon aligner(MakeLlm(), kCfDim, options);
  EXPECT_EQ(aligner.name(), "rlmrec-con");
  core::Rng rng(2);
  Variable nodes = MakeNodes();
  Variable loss = aligner.Loss(nodes, rng);
  ASSERT_FALSE(loss.IsNull());
  EXPECT_TRUE(std::isfinite(loss.scalar()));

  RlmrecOptions heavy = options;
  heavy.weight = options.weight * 4.0f;
  RlmrecCon heavy_aligner(MakeLlm(), kCfDim, heavy);
  core::Rng rng2(2);
  Variable loss_heavy = heavy_aligner.Loss(nodes, rng2);
  EXPECT_NEAR(loss_heavy.scalar(), 4.0f * loss.scalar(),
              std::fabs(loss.scalar()) * 0.01f + 1e-5f);
}

TEST(RlmrecConTest, GradientsFlow) {
  RlmrecOptions options;
  options.sample_size = 24;
  RlmrecCon aligner(MakeLlm(), kCfDim, options);
  core::Rng rng(3);
  Variable nodes = MakeNodes();
  Backward(aligner.Loss(nodes, rng));
  EXPECT_FALSE(nodes.grad().empty());
  for (const Variable& p : aligner.Params()) EXPECT_FALSE(p.grad().empty());
}

TEST(RlmrecConTest, TrainingPullsRepresentationsTogether) {
  RlmrecOptions options;
  options.sample_size = kNodes;
  options.weight = 1.0f;
  RlmrecCon aligner(MakeLlm(), kCfDim, options);
  Variable nodes = MakeNodes();
  std::vector<Variable> params = aligner.Params();
  params.push_back(nodes);
  tensor::Adam adam(params, 0.02f);
  core::Rng rng(4);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 80; ++step) {
    adam.ZeroGrad();
    Variable loss = aligner.Loss(nodes, rng);
    if (step == 0) first = loss.scalar();
    last = loss.scalar();
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, first * 0.8);
}

TEST(RlmrecGenTest, ReconstructionLossDecreases) {
  RlmrecOptions options;
  options.sample_size = kNodes;
  options.weight = 1.0f;
  RlmrecGen aligner(MakeLlm(), kCfDim, options);
  EXPECT_EQ(aligner.name(), "rlmrec-gen");
  Variable nodes = MakeNodes();
  tensor::Adam adam(aligner.Params(), 0.02f);
  core::Rng rng(5);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 80; ++step) {
    adam.ZeroGrad();
    Variable loss = aligner.Loss(nodes, rng);
    if (step == 0) first = loss.scalar();
    last = loss.scalar();
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, first * 0.8);
  EXPECT_GE(last, 0.0);
}

TEST(RlmrecGenTest, LossNonNegative) {
  RlmrecOptions options;
  options.sample_size = 16;
  RlmrecGen aligner(MakeLlm(), kCfDim, options);
  core::Rng rng(6);
  Variable nodes = MakeNodes();
  EXPECT_GE(aligner.Loss(nodes, rng).scalar(), 0.0f);
}

TEST(KarTest, AugmentChangesEmbeddings) {
  KarOptions options;
  Kar aligner(MakeLlm(), kCfDim, options);
  EXPECT_EQ(aligner.name(), "kar");
  Variable nodes = MakeNodes();
  Variable augmented = aligner.AugmentNodes(nodes);
  EXPECT_EQ(augmented.rows(), kNodes);
  EXPECT_EQ(augmented.cols(), kCfDim);
  EXPECT_FALSE(tensor::AllClose(augmented.value(), nodes.value()));
}

TEST(KarTest, NoAuxLoss) {
  Kar aligner(MakeLlm(), kCfDim, KarOptions{});
  core::Rng rng(7);
  Variable nodes = MakeNodes();
  EXPECT_TRUE(aligner.Loss(nodes, rng).IsNull());
}

TEST(KarTest, BlendScalesAugmentation) {
  KarOptions small;
  small.blend = 0.1f;
  KarOptions large = small;
  large.blend = 0.4f;
  Kar a(MakeLlm(), kCfDim, small);
  Kar b(MakeLlm(), kCfDim, large);
  Variable nodes = MakeNodes();
  Matrix delta_small = tensor::Sub(a.AugmentNodes(nodes).value(), nodes.value());
  Matrix delta_large = tensor::Sub(b.AugmentNodes(nodes).value(), nodes.value());
  EXPECT_TRUE(
      tensor::AllClose(tensor::Scale(delta_small, 4.0f), delta_large, 1e-4f));
}

TEST(KarTest, GradientsFlowThroughAdapterViaRanking) {
  Kar aligner(MakeLlm(), kCfDim, KarOptions{});
  Variable nodes = MakeNodes();
  Variable augmented = aligner.AugmentNodes(nodes);
  Backward(tensor::SumSquares(augmented));
  for (const Variable& p : aligner.Params()) EXPECT_FALSE(p.grad().empty());
}

TEST(ControlRecTest, LossFiniteAndTrainable) {
  RlmrecOptions options;
  options.sample_size = 24;
  ControlRec aligner(MakeLlm(), kCfDim, options);
  EXPECT_EQ(aligner.name(), "controlrec");
  core::Rng rng(8);
  Variable nodes = MakeNodes();
  Variable loss = aligner.Loss(nodes, rng);
  ASSERT_FALSE(loss.IsNull());
  EXPECT_TRUE(std::isfinite(loss.scalar()));
  Backward(loss);
  EXPECT_FALSE(nodes.grad().empty());
  for (const Variable& p : aligner.Params()) EXPECT_FALSE(p.grad().empty());
}

TEST(ControlRecTest, TrainingReducesLoss) {
  RlmrecOptions options;
  options.sample_size = kNodes;
  options.weight = 1.0f;
  ControlRec aligner(MakeLlm(), kCfDim, options);
  Variable nodes = MakeNodes();
  std::vector<Variable> params = aligner.Params();
  params.push_back(nodes);
  tensor::Adam adam(params, 0.02f);
  core::Rng rng(9);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 80; ++step) {
    adam.ZeroGrad();
    Variable loss = aligner.Loss(nodes, rng);
    if (step == 0) first = loss.scalar();
    last = loss.scalar();
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, first);
}

TEST(CtrlTest, SymmetricLossAndTwoTowers) {
  RlmrecOptions options;
  options.sample_size = 24;
  Ctrl aligner(MakeLlm(), kCfDim, options);
  EXPECT_EQ(aligner.name(), "ctrl");
  // Two 2-layer towers -> 8 parameters.
  EXPECT_EQ(aligner.Params().size(), 8u);
  core::Rng rng(10);
  Variable nodes = MakeNodes();
  Variable loss = aligner.Loss(nodes, rng);
  ASSERT_FALSE(loss.IsNull());
  EXPECT_TRUE(std::isfinite(loss.scalar()));
  Backward(loss);
  EXPECT_FALSE(nodes.grad().empty());
}

TEST(CtrlTest, TrainingAlignsJointSpace) {
  RlmrecOptions options;
  options.sample_size = kNodes;
  options.weight = 1.0f;
  Ctrl aligner(MakeLlm(), kCfDim, options);
  Variable nodes = MakeNodes();
  std::vector<Variable> params = aligner.Params();
  params.push_back(nodes);
  tensor::Adam adam(params, 0.02f);
  core::Rng rng(11);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 80; ++step) {
    adam.ZeroGrad();
    Variable loss = aligner.Loss(nodes, rng);
    if (step == 0) first = loss.scalar();
    last = loss.scalar();
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, first * 0.8);
}

}  // namespace
}  // namespace darec::align
