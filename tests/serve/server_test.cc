// Online serving tier: microbatched queue semantics (size/deadline flush,
// unified k contract, drain on stop), bitwise parity with the serial
// engine per snapshot, non-blocking snapshot swaps with zero dropped in-flight
// requests, and a multi-producer hammer (run under TSan by check.sh).
#include "serve/server.h"

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "serve/recommender.h"
#include "serve/snapshot.h"

namespace darec::serve {
namespace {

/// A moderately-sized random world so batches and rankings are non-trivial:
/// 40 users x 60 items, d=8, every user with a few training interactions.
struct Fixture {
  Fixture() {
    core::Rng rng(5);
    std::vector<data::Interaction> interactions;
    for (int64_t u = 0; u < 40; ++u) {
      for (int64_t n = 0; n < 4; ++n) {
        interactions.push_back({u, rng.UniformInt(60)});
      }
    }
    auto ds = data::Dataset::Create("server-test", 40, 60, interactions,
                                    data::SplitRatio{1.0, 0.0, 0.0}, rng);
    DARE_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(ds).value());
    embeddings = tensor::Matrix(100, 8);
    for (int64_t r = 0; r < 100; ++r) {
      for (int64_t c = 0; c < 8; ++c) {
        embeddings(r, c) = rng.Uniform(-1.0f, 1.0f);
      }
    }
  }

  std::shared_ptr<const ModelSnapshot> Snapshot(bool build_int8 = false,
                                                uint64_t version = 0) const {
    auto snapshot =
        ModelSnapshot::Create(embeddings, dataset.get(), build_int8, version);
    DARE_CHECK(snapshot.ok()) << snapshot.status().ToString();
    return *snapshot;
  }

  /// Serial fp32 reference for (user, k) — what every queued fp32 result
  /// must match bitwise.
  std::vector<ScoredItem> Reference(int64_t user, int64_t k) const {
    auto rec = Recommender::Create(embeddings, dataset.get());
    DARE_CHECK(rec.ok());
    auto list = rec->RecommendTopK(user, k);
    DARE_CHECK(list.ok());
    return *list;
  }

  std::unique_ptr<data::Dataset> dataset;
  tensor::Matrix embeddings;
};

void ExpectBitwiseEqual(const std::vector<ScoredItem>& got,
                        const std::vector<ScoredItem>& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].item, want[i].item) << what << " rank " << i;
    ASSERT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

TEST(ServerTest, DeadlineFlushAnswersPartialBatchBitwiseEqualToSerial) {
  Fixture f;
  ServerOptions options;
  options.max_batch = 1000;          // size trigger unreachable
  options.flush_deadline_us = 2000;  // deadline does the flushing
  Server server(f.Snapshot(), options);
  auto fut = server.SubmitTopK(3, 10);
  auto result = fut.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitwiseEqual(result->items, f.Reference(3, 10), "deadline flush");
  EXPECT_GE(server.stats().deadline_flushes, 1);
}

TEST(ServerTest, SizeFlushFiresBeforeDeadline) {
  Fixture f;
  ServerOptions options;
  options.max_batch = 4;
  options.flush_deadline_us = 60'000'000;  // a minute: only size can fire
  Server server(f.Snapshot(), options);
  std::vector<std::future<core::StatusOr<TopKResult>>> futures;
  for (int64_t u = 0; u < 4; ++u) futures.push_back(server.SubmitTopK(u, 5));
  for (int64_t u = 0; u < 4; ++u) {
    auto result = futures[static_cast<size_t>(u)].get();
    ASSERT_TRUE(result.ok());
    ExpectBitwiseEqual(result->items, f.Reference(u, 5),
                       "size flush user " + std::to_string(u));
  }
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.size_flushes, 1);
  EXPECT_EQ(stats.completed, 4);
}

TEST(ServerTest, MixedKInOneBatchEachGetsItsOwnPrefix) {
  Fixture f;
  ServerOptions options;
  options.max_batch = 3;
  options.flush_deadline_us = 60'000'000;
  Server server(f.Snapshot(), options);
  auto f1 = server.SubmitTopK(1, 3);
  auto f2 = server.SubmitTopK(2, 17);
  auto f3 = server.SubmitTopK(1, 8);  // duplicate user, different k
  auto r1 = f1.get();
  auto r2 = f2.get();
  auto r3 = f3.get();
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  ExpectBitwiseEqual(r1->items, f.Reference(1, 3), "k=3");
  ExpectBitwiseEqual(r2->items, f.Reference(2, 17), "k=17");
  ExpectBitwiseEqual(r3->items, f.Reference(1, 8), "k=8");
}

TEST(ServerTest, UnifiedKContract) {
  Fixture f;
  Server server(f.Snapshot(), ServerOptions{});
  // Non-positive k fails immediately (InvalidArgument), never enqueued.
  auto bad = server.SubmitTopK(0, 0).get();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_EQ(server.stats().submitted, 0);
  // Oversized k clamps to the eligible count, like the Recommender.
  auto big = server.SubmitTopK(0, 1000).get();
  ASSERT_TRUE(big.ok());
  ExpectBitwiseEqual(big->items, f.Reference(0, 1000), "clamped k");
  // Bad user ids complete with OutOfRange instead of poisoning the batch.
  auto oob = server.SubmitTopK(40, 5).get();
  ASSERT_FALSE(oob.ok());
  EXPECT_EQ(oob.status().code(), core::StatusCode::kOutOfRange);
}

TEST(ServerTest, StopDrainsEveryPendingRequest) {
  Fixture f;
  ServerOptions options;
  options.max_batch = 1000;
  options.flush_deadline_us = 60'000'000;  // nothing flushes on its own
  auto server = std::make_unique<Server>(f.Snapshot(), options);
  std::vector<std::future<core::StatusOr<TopKResult>>> futures;
  for (int64_t u = 0; u < 25; ++u) futures.push_back(server->SubmitTopK(u, 7));
  server->Stop();
  for (int64_t u = 0; u < 25; ++u) {
    auto result = futures[static_cast<size_t>(u)].get();
    ASSERT_TRUE(result.ok()) << "request " << u << " dropped on Stop";
    ExpectBitwiseEqual(result->items, f.Reference(u, 7),
                       "drained user " + std::to_string(u));
  }
  EXPECT_GE(server->stats().drain_flushes, 1);
  // Post-stop submits fail fast.
  auto late = server->SubmitTopK(0, 5).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), core::StatusCode::kFailedPrecondition);
}

TEST(ServerTest, SnapshotSwapKeepsResultsBitwiseIdenticalForSameContent) {
  Fixture f;
  ServerOptions options;
  options.max_batch = 8;
  options.flush_deadline_us = 500;
  Server server(f.Snapshot(false, /*version=*/1), options);
  // Swap in a freshly-built snapshot of the SAME embeddings mid-stream:
  // results must stay bitwise identical whichever snapshot answered.
  std::vector<std::future<core::StatusOr<TopKResult>>> futures;
  for (int64_t i = 0; i < 120; ++i) {
    futures.push_back(server.SubmitTopK(i % 40, 10));
    if (i == 40) server.ReloadModel(f.Snapshot(false, /*version=*/2));
  }
  bool saw_v2 = false;
  for (int64_t i = 0; i < 120; ++i) {
    auto result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.ok());
    saw_v2 |= result->snapshot_version == 2;
    ExpectBitwiseEqual(result->items, f.Reference(i % 40, 10),
                       "request " + std::to_string(i));
  }
  EXPECT_TRUE(saw_v2) << "reload never took effect";
  EXPECT_EQ(server.stats().reloads, 1);
}

TEST(ServerTest, Int8ServerCompletesAndRequiresInt8Snapshot) {
  Fixture f;
  ServerOptions options;
  options.precision = Precision::kInt8;
  options.max_batch = 16;
  options.flush_deadline_us = 500;
  Server server(f.Snapshot(/*build_int8=*/true), options);
  auto ok = server.SubmitTopK(7, 10).get();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_LE(ok->items.size(), 10u);
  EXPECT_FALSE(ok->items.empty());
  // Swapping in a snapshot without int8 blocks fails requests cleanly
  // (FailedPrecondition) instead of aborting the flusher.
  server.ReloadModel(f.Snapshot(/*build_int8=*/false));
  auto bad = server.SubmitTopK(7, 10).get();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), core::StatusCode::kFailedPrecondition);
}

/// The concurrency gate: several producer threads hammer the queue while
/// the model is reloaded mid-flight (alternating between two snapshots of
/// identical content). Every request must complete, and every result must
/// match the serial engine bitwise. Run under TSan by scripts/check.sh.
TEST(ServerTest, MultiProducerHammerWithMidFlightReloads) {
  Fixture f;
  ServerOptions options;
  options.max_batch = 32;
  options.flush_deadline_us = 200;
  Server server(f.Snapshot(false, 1), options);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  // Precompute references once (serial, before the hammer).
  std::vector<std::vector<ScoredItem>> reference;
  for (int64_t u = 0; u < 40; ++u) {
    reference.push_back(f.Reference(u, 1 + (u % 13)));
  }

  std::atomic<int> completed{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      core::Rng rng(100 + t);
      for (int i = 0; i < kPerProducer; ++i) {
        const int64_t user = rng.UniformInt(40);
        const int64_t k = 1 + (user % 13);
        auto result = server.SubmitTopK(user, k).get();
        if (!result.ok()) continue;  // should not happen; counted below
        const auto& want = reference[static_cast<size_t>(user)];
        bool equal = result->items.size() == want.size();
        for (size_t r = 0; equal && r < want.size(); ++r) {
          equal = result->items[r].item == want[r].item &&
                  result->items[r].score == want[r].score;
        }
        if (!equal) mismatches.fetch_add(1);
        completed.fetch_add(1);
      }
    });
  }
  // Reload repeatedly while the producers are in flight.
  std::thread reloader([&] {
    for (uint64_t v = 2; v <= 9; ++v) {
      server.ReloadModel(f.Snapshot(false, v));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& p : producers) p.join();
  reloader.join();
  server.Stop();

  EXPECT_EQ(completed.load(), kProducers * kPerProducer)
      << "some requests never completed";
  EXPECT_EQ(mismatches.load(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.completed, kProducers * kPerProducer);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.reloads, 8);
  EXPECT_GT(stats.max_batch_observed, 1) << "queue never coalesced a batch";
}

/// Stop() races live submits carrying a mix of deadlines while the queue is
/// bounded: every future must complete exactly once, and client-observed
/// outcomes must reconcile exactly with the server's own counters —
/// completed + failed == submitted, with sheds and admission-expired
/// deadlines accounted separately. Runs under TSan in check.sh.
TEST(ServerTest, StopVsSubmitHammerWithDeadlines) {
  Fixture f;
  ServerOptions options;
  options.max_batch = 16;
  options.flush_deadline_us = 200;
  options.max_queue = 32;
  options.overload.k_degraded = 3;
  Server server(f.Snapshot(/*build_int8=*/true, 1), options);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 300;
  // Client-side tally of every possible outcome.
  std::atomic<int> ok{0};
  std::atomic<int> deadline{0};
  std::atomic<int> shed{0};
  std::atomic<int> stopped{0};
  std::atomic<int> other{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      core::Rng rng(200 + t);
      const int64_t timeouts[] = {0, 50, 1000, 5000};
      for (int i = 0; i < kPerProducer; ++i) {
        const int64_t user = rng.UniformInt(40);
        const int64_t timeout_us = timeouts[rng.UniformInt(4)];
        auto result = server.SubmitTopK(user, 1 + (user % 13), timeout_us).get();
        if (result.ok()) {
          ok.fetch_add(1);
          continue;
        }
        switch (result.status().code()) {
          case core::StatusCode::kDeadlineExceeded: deadline.fetch_add(1); break;
          case core::StatusCode::kResourceExhausted: shed.fetch_add(1); break;
          case core::StatusCode::kFailedPrecondition: stopped.fetch_add(1); break;
          default: other.fetch_add(1); break;
        }
      }
    });
  }
  // Stop mid-stream: producers past the cutoff observe FailedPrecondition.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Stop();
  for (auto& p : producers) p.join();

  // Every request completed exactly once, with a recognized outcome.
  EXPECT_EQ(ok + deadline + shed + stopped, kProducers * kPerProducer);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(stopped.load(), 0) << "Stop() landed after all submits";

  // Server-side accounting closes: everything admitted was fulfilled.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.shed_admission, shed.load());
  // Client-observed DeadlineExceeded = admission-expired (not submitted)
  // + expired at assembly / in flush (counted in failed).
  EXPECT_EQ(stats.shed_deadline, deadline.load());
  EXPECT_GT(stats.peak_pending, 0);
  EXPECT_LE(stats.peak_pending, options.max_queue);
}

}  // namespace
}  // namespace darec::serve
