// Overload protection for the serving tier (DESIGN.md §13): the pure
// ladder transition function, bounded admission (ResourceExhausted at
// max_queue), per-request deadlines enforced at admission / batch assembly /
// in-flush, deterministic degraded flushes (k clamp + int8 switch, bitwise
// against the engine), recovery hysteresis, and the client-side
// SubmitWithRetry backoff loop. Every scenario is driven by fail-point
// injected slow flushes — wall-clock sleeps appear only as generous margins
// (100x+) around the injected stall, never as assertions.
#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/backoff.h"
#include "core/failpoint.h"
#include "core/rng.h"
#include "gtest/gtest.h"
#include "serve/recommender.h"
#include "serve/server.h"
#include "serve/server_overload.h"
#include "serve/snapshot.h"

namespace darec::serve {
namespace {

/// Same world as server_test: 40 users x 60 items, d=8, a few training
/// interactions per user.
struct Fixture {
  Fixture() {
    core::Rng rng(5);
    std::vector<data::Interaction> interactions;
    for (int64_t u = 0; u < 40; ++u) {
      for (int64_t n = 0; n < 4; ++n) {
        interactions.push_back({u, rng.UniformInt(60)});
      }
    }
    auto ds = data::Dataset::Create("overload-test", 40, 60, interactions,
                                    data::SplitRatio{1.0, 0.0, 0.0}, rng);
    DARE_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(ds).value());
    embeddings = tensor::Matrix(100, 8);
    for (int64_t r = 0; r < 100; ++r) {
      for (int64_t c = 0; c < 8; ++c) {
        embeddings(r, c) = rng.Uniform(-1.0f, 1.0f);
      }
    }
  }

  std::shared_ptr<const ModelSnapshot> Snapshot(bool build_int8 = false,
                                                uint64_t version = 0) const {
    auto snapshot =
        ModelSnapshot::Create(embeddings, dataset.get(), build_int8, version);
    DARE_CHECK(snapshot.ok()) << snapshot.status().ToString();
    return *snapshot;
  }

  /// Engine reference at the given precision — what a degraded (clamped,
  /// possibly int8) result must match bitwise: both paths are deterministic.
  std::vector<topk::ScoredItem> EngineReference(
      const ModelSnapshot& snapshot, int64_t user, int64_t k,
      Precision precision) const {
    const topk::SeenItemsFn seen = [this](int64_t u) {
      return &dataset->TrainItemsOfUser(u);
    };
    return snapshot.engine()
        .TopK({user}, k, seen, topk::MaskMode::kDrop, precision)
        .front();
  }

  std::unique_ptr<data::Dataset> dataset;
  tensor::Matrix embeddings;
};

void ExpectBitwiseEqual(const std::vector<topk::ScoredItem>& got,
                        const std::vector<topk::ScoredItem>& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].item, want[i].item) << what << " rank " << i;
    ASSERT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

/// Disarms fail points armed by a test even when it exits early.
struct FailPointGuard {
  ~FailPointGuard() { core::FailPoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// The pure transition function: every decision is state x depth -> state.
// ---------------------------------------------------------------------------

OverloadOptions LadderOptions() {
  OverloadOptions o;
  o.degrade_enter = 8;
  o.degrade_exit = 2;
  o.shed_enter = 16;
  o.shed_exit = 4;
  return o;
}

TEST(LoadLadderTest, WalksUpAndDownWithHysteresis) {
  const OverloadOptions o = LadderOptions();
  using S = LoadState;
  // Healthy holds below degrade_enter.
  EXPECT_EQ(NextLoadState(S::kHealthy, 0, o), S::kHealthy);
  EXPECT_EQ(NextLoadState(S::kHealthy, 7, o), S::kHealthy);
  // Crossing degrade_enter degrades; crossing shed_enter sheds (a spike
  // jumps straight there).
  EXPECT_EQ(NextLoadState(S::kHealthy, 8, o), S::kDegraded);
  EXPECT_EQ(NextLoadState(S::kHealthy, 16, o), S::kShedding);
  // Hysteresis: Degraded holds anywhere in (degrade_exit, shed_enter).
  EXPECT_EQ(NextLoadState(S::kDegraded, 7, o), S::kDegraded);
  EXPECT_EQ(NextLoadState(S::kDegraded, 3, o), S::kDegraded);
  EXPECT_EQ(NextLoadState(S::kDegraded, 2, o), S::kHealthy);
  EXPECT_EQ(NextLoadState(S::kDegraded, 16, o), S::kShedding);
  // Shedding holds above shed_exit; recovery descends through the bands.
  EXPECT_EQ(NextLoadState(S::kShedding, 15, o), S::kShedding);
  EXPECT_EQ(NextLoadState(S::kShedding, 5, o), S::kShedding);
  EXPECT_EQ(NextLoadState(S::kShedding, 4, o), S::kDegraded);
  EXPECT_EQ(NextLoadState(S::kShedding, 2, o), S::kHealthy);
}

TEST(LoadLadderTest, DisabledLadderNeverLeavesHealthy) {
  OverloadOptions o = LadderOptions();
  o.enabled = false;
  for (int64_t depth : {0, 10, 100, 1000000}) {
    EXPECT_EQ(NextLoadState(LoadState::kHealthy, depth, o),
              LoadState::kHealthy);
    EXPECT_EQ(NextLoadState(LoadState::kShedding, depth, o),
              LoadState::kHealthy);
  }
}

TEST(LoadLadderTest, ControllerCountsTransitions) {
  LoadController controller(LadderOptions());
  // healthy -> degraded -> shedding -> degraded -> healthy, with holds.
  EXPECT_EQ(controller.Observe(3), LoadState::kHealthy);
  EXPECT_EQ(controller.Observe(9), LoadState::kDegraded);
  EXPECT_EQ(controller.Observe(12), LoadState::kDegraded);  // hold
  EXPECT_EQ(controller.Observe(20), LoadState::kShedding);
  EXPECT_EQ(controller.Observe(10), LoadState::kShedding);  // hold
  EXPECT_EQ(controller.Observe(4), LoadState::kDegraded);
  EXPECT_EQ(controller.Observe(1), LoadState::kHealthy);
  EXPECT_EQ(controller.to_degraded(), 2);  // entered from both sides
  EXPECT_EQ(controller.to_shedding(), 1);
  EXPECT_EQ(controller.to_healthy(), 1);
  EXPECT_EQ(controller.state(), LoadState::kHealthy);
}

// ---------------------------------------------------------------------------
// Option validation.
// ---------------------------------------------------------------------------

TEST(OverloadOptionsTest, WatermarksDeriveFromMaxQueue) {
  Fixture f;
  ServerOptions options;
  options.max_queue = 1024;
  Server server(f.Snapshot(), options);
  const OverloadOptions& o = server.options().overload;
  EXPECT_TRUE(o.enabled);
  EXPECT_EQ(o.degrade_enter, 512);
  EXPECT_EQ(o.degrade_exit, 128);
  EXPECT_EQ(o.shed_enter, 768);
  EXPECT_EQ(o.shed_exit, 256);
}

TEST(OverloadOptionsTest, UnboundedQueueWithoutWatermarksDisablesLadder) {
  Fixture f;
  ServerOptions options;
  options.max_queue = 0;  // unbounded
  Server server(f.Snapshot(), options);
  EXPECT_FALSE(server.options().overload.enabled);
}

TEST(OverloadOptionsTest, OutOfRangeScalarsAreClamped) {
  Fixture f;
  ServerOptions options;
  options.max_batch = -3;
  options.flush_deadline_us = -100;
  Server server(f.Snapshot(), options);
  EXPECT_EQ(server.options().max_batch, 1);
  EXPECT_EQ(server.options().flush_deadline_us, 0);
}

TEST(OverloadOptionsDeathTest, QueueSmallerThanBatchIsRejected) {
  Fixture f;
  ServerOptions options;
  options.max_batch = 64;
  options.max_queue = 16;
  EXPECT_DEATH(Server(f.Snapshot(), options), "max_queue");
}

TEST(OverloadOptionsDeathTest, InvertedWatermarksAreRejected) {
  Fixture f;
  ServerOptions options;
  options.overload.degrade_enter = 10;
  options.overload.degrade_exit = 20;  // exit above enter: no hysteresis band
  options.overload.shed_enter = 30;
  options.overload.shed_exit = 25;
  EXPECT_DEATH(Server(f.Snapshot(), options), "hysteresis");
}

// ---------------------------------------------------------------------------
// Bounded admission and the pending()/peak_pending gauges.
// ---------------------------------------------------------------------------

TEST(OverloadTest, AdmissionShedsAtMaxQueueAndPendingObservesBacklog) {
  Fixture f;
  FailPointGuard guard;
  ServerOptions options;
  options.max_batch = 8;
  options.flush_deadline_us = 60'000'000;  // only the size trigger flushes
  options.max_queue = 8;
  options.overload.enabled = false;  // isolate the hard bound
  Server server(f.Snapshot(), options);

  // The first (size-triggered) flush stalls 300ms holding its batch of 8;
  // the refill below lands in microseconds while the queue is empty, so it
  // deterministically fills to max_queue without tripping another flush.
  core::FailPoint::Arm("serve.slow_flush", /*arg=*/300'000, /*fires=*/1);
  std::vector<std::future<core::StatusOr<TopKResult>>> futures;
  for (int64_t i = 0; i < 8; ++i) futures.push_back(server.SubmitTopK(i, 5));
  // Wait (bounded, well inside the 300ms stall) for the flusher to claim
  // the first batch, then refill the now-empty queue to the brim.
  for (int spins = 0; server.pending() > 0 && spins < 2000; ++spins) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(server.pending(), 0) << "flusher never claimed the first batch";
  for (int64_t i = 0; i < 8; ++i) futures.push_back(server.SubmitTopK(i, 5));
  EXPECT_EQ(server.pending(), 8);
  auto shed = server.SubmitTopK(0, 5).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), core::StatusCode::kResourceExhausted);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_admission, 1);
  EXPECT_EQ(stats.submitted, 16);  // the shed request never counts
  EXPECT_EQ(stats.peak_pending, 8);
  server.Stop();  // drain completes every held future
  for (auto& fut : futures) ASSERT_TRUE(fut.get().ok());
  EXPECT_EQ(server.pending(), 0);
}

// ---------------------------------------------------------------------------
// Deadlines: admission, batch assembly, and in-flush enforcement.
// ---------------------------------------------------------------------------

TEST(OverloadTest, SpentBudgetExpiresAtAdmissionWithoutEnqueueing) {
  Fixture f;
  Server server(f.Snapshot(), ServerOptions{});
  auto result = server.SubmitTopK(0, 5, /*timeout_us=*/-1).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_deadline, 1);
  EXPECT_EQ(stats.submitted, 0);
}

TEST(OverloadTest, RequestExpiresAtAssemblyWhileAnEarlierFlushStalls) {
  Fixture f;
  FailPointGuard guard;
  ServerOptions options;
  options.max_batch = 1;
  options.flush_deadline_us = 0;
  options.overload.enabled = false;
  Server server(f.Snapshot(), options);
  // The first flush stalls 300ms; r2's 1ms deadline expires ~300x over
  // while it waits, so the flusher fails it at assembly without scoring.
  core::FailPoint::Arm("serve.slow_flush", /*arg=*/300'000, /*fires=*/1);
  auto r1 = server.SubmitTopK(0, 5);
  auto r2 = server.SubmitTopK(1, 5, /*timeout_us=*/1000);
  ASSERT_TRUE(r1.get().ok());
  auto expired = r2.get();
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), core::StatusCode::kDeadlineExceeded);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1);  // r2 never reached the engine
  EXPECT_EQ(stats.shed_deadline, 1);
  EXPECT_EQ(stats.failed, 1);
}

TEST(OverloadTest, RequestExpiresInsideAStalledFlush) {
  Fixture f;
  FailPointGuard guard;
  ServerOptions options;
  options.max_batch = 1;
  options.flush_deadline_us = 0;
  options.overload.enabled = false;
  Server server(f.Snapshot(), options);
  // The request's own flush stalls 400ms against a 20ms budget: the
  // post-stall re-check fails it before the GEMM.
  core::FailPoint::Arm("serve.slow_flush", /*arg=*/400'000, /*fires=*/1);
  auto result = server.SubmitTopK(0, 5, /*timeout_us=*/20'000).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.shed_deadline, 1);
  EXPECT_GE(stats.flushes, 1);  // the flush ran; the request was not scored
}

TEST(OverloadTest, FlushFailFailPointFailsLiveRequestsWithInternal) {
  Fixture f;
  FailPointGuard guard;
  ServerOptions options;
  options.max_batch = 1;
  options.flush_deadline_us = 0;
  Server server(f.Snapshot(), options);
  core::FailPoint::Arm("serve.flush_fail", /*arg=*/0, /*fires=*/1);
  auto failed = server.SubmitTopK(0, 5).get();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), core::StatusCode::kInternal);
  EXPECT_EQ(server.stats().flush_failures, 1);
  // The fail point auto-disarmed after one fire: the next request is fine.
  auto ok = server.SubmitTopK(0, 5).get();
  ASSERT_TRUE(ok.ok());
}

// ---------------------------------------------------------------------------
// The degradation ladder inside the server.
// ---------------------------------------------------------------------------

/// Degraded flushes clamp k to k_degraded and switch to int8 when the
/// snapshot has int8 blocks — results bitwise equal to the engine's own
/// int8 path at the clamped k (both fully deterministic).
TEST(OverloadTest, DegradedFlushClampsKAndSwitchesToInt8) {
  Fixture f;
  FailPointGuard guard;
  auto snapshot = f.Snapshot(/*build_int8=*/true);
  ServerOptions options;
  options.max_batch = 4;
  options.flush_deadline_us = 0;
  options.max_queue = 64;
  options.overload.degrade_enter = 2;
  options.overload.degrade_exit = 0;  // recover only on an empty queue
  options.overload.shed_enter = 50;
  options.overload.shed_exit = 10;
  options.overload.k_degraded = 3;
  options.overload.int8_when_degraded = true;
  Server server(snapshot, options);

  // Stall the first flush 400ms; everything submitted meanwhile piles up,
  // crossing degrade_enter=2 at admission. With degrade_exit=0 the ladder
  // cannot recover until the queue is observed empty, so every request not
  // in the stalled first batch (at most r0 + 3 fillers) drains Degraded.
  core::FailPoint::Arm("serve.slow_flush", /*arg=*/400'000, /*fires=*/1);
  auto r0 = server.SubmitTopK(0, 10);
  std::vector<std::future<core::StatusOr<TopKResult>>> fillers;
  for (int64_t u = 1; u <= 8; ++u) {
    fillers.push_back(server.SubmitTopK(u, 10));
  }
  (void)r0.get();  // healthy or degraded depending on first-batch timing
  for (size_t i = 0; i < fillers.size(); ++i) {
    auto result = fillers[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (i < 3) continue;  // f1..f3 may have ridden the first (stalled) batch
    const int64_t user = static_cast<int64_t>(i) + 1;
    ExpectBitwiseEqual(
        result->items,
        f.EngineReference(*snapshot, user, 3, Precision::kInt8),
        "degraded int8 user " + std::to_string(user));
  }
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.to_degraded, 1);
  EXPECT_GE(stats.degraded_flushes, 1);

  // Recovery: with the queue drained, the next admission observes depth 0
  // and returns to Healthy — full k, fp32, bitwise equal to the serial path.
  auto probe = server.SubmitTopK(5, 10).get();
  ASSERT_TRUE(probe.ok());
  ExpectBitwiseEqual(probe->items,
                     f.EngineReference(*snapshot, 5, 10, Precision::kFp32),
                     "healthy probe after recovery");
  const ServerStats after = server.stats();
  EXPECT_GE(after.to_healthy, 1);
  EXPECT_EQ(after.load_state, LoadState::kHealthy);
}

/// Without int8 blocks, degradation is the k clamp alone — never an error,
/// and still bitwise (fp32 prefix).
TEST(OverloadTest, DegradedFlushWithoutInt8BlocksStaysFp32) {
  Fixture f;
  FailPointGuard guard;
  auto snapshot = f.Snapshot(/*build_int8=*/false);
  ServerOptions options;
  options.max_batch = 4;
  options.flush_deadline_us = 0;
  options.max_queue = 64;
  options.overload.degrade_enter = 2;
  options.overload.degrade_exit = 0;
  options.overload.shed_enter = 50;
  options.overload.shed_exit = 10;
  options.overload.k_degraded = 3;
  Server server(snapshot, options);

  core::FailPoint::Arm("serve.slow_flush", /*arg=*/400'000, /*fires=*/1);
  auto r0 = server.SubmitTopK(0, 10);
  std::vector<std::future<core::StatusOr<TopKResult>>> fillers;
  for (int64_t u = 1; u <= 8; ++u) {
    fillers.push_back(server.SubmitTopK(u, 10));
  }
  (void)r0.get();
  for (size_t i = 3; i < fillers.size(); ++i) {
    auto result = fillers[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const int64_t user = static_cast<int64_t>(i) + 1;
    ExpectBitwiseEqual(
        result->items,
        f.EngineReference(*snapshot, user, 3, Precision::kFp32),
        "degraded fp32 user " + std::to_string(user));
  }
  EXPECT_GE(server.stats().degraded_flushes, 1);
}

/// Drives the full ladder: Healthy -> Degraded -> Shedding under a
/// fail-point-stalled flusher, sheds at admission while Shedding, then
/// recovers to Healthy once drained. No wall-clock assertions: the stall
/// dwarfs the submission burst by orders of magnitude.
TEST(OverloadTest, FullLadderWalkShedsAndRecovers) {
  Fixture f;
  FailPointGuard guard;
  auto snapshot = f.Snapshot(/*build_int8=*/true);
  ServerOptions options;
  options.max_batch = 4;
  options.flush_deadline_us = 0;
  options.max_queue = 64;
  options.overload.degrade_enter = 8;
  options.overload.degrade_exit = 0;
  options.overload.shed_enter = 16;
  options.overload.shed_exit = 4;
  options.overload.k_degraded = 3;
  Server server(snapshot, options);

  core::FailPoint::Arm("serve.slow_flush", /*arg=*/500'000, /*fires=*/1);
  std::vector<std::future<core::StatusOr<TopKResult>>> admitted;
  admitted.push_back(server.SubmitTopK(0, 10));  // starts the stalled flush
  // Keep submitting until admission sheds: the queue crosses degrade_enter
  // then shed_enter long before the 500ms stall ends (the first flush can
  // consume at most max_batch=4 requests).
  int64_t sheds = 0;
  for (int64_t i = 1; i <= 40 && sheds == 0; ++i) {
    auto fut = server.SubmitTopK(i % 40, 10);
    // A shed future is ready immediately with ResourceExhausted.
    if (fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      auto result = fut.get();
      if (!result.ok() &&
          result.status().code() == core::StatusCode::kResourceExhausted) {
        ++sheds;
        continue;
      }
      // Not shed (e.g. an instant failure would be a bug): fall through to
      // tracking it like any admitted request.
      ADD_FAILURE() << "unexpected instant completion: "
                    << (result.ok() ? "OK" : result.status().ToString());
      continue;
    }
    admitted.push_back(std::move(fut));
  }
  EXPECT_EQ(sheds, 1) << "admission never shed while Shedding";
  {
    const ServerStats stats = server.stats();
    EXPECT_GE(stats.to_degraded, 1);
    EXPECT_GE(stats.to_shedding, 1);
    EXPECT_EQ(stats.shed_admission, 1);
  }

  // Every admitted request drains to a result (Degraded settings, but
  // always answered).
  for (auto& fut : admitted) {
    auto result = fut.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  // Recovery: first admission on the drained queue observes depth 0.
  auto probe = server.SubmitTopK(7, 10).get();
  ASSERT_TRUE(probe.ok());
  ExpectBitwiseEqual(probe->items,
                     f.EngineReference(*snapshot, 7, 10, Precision::kFp32),
                     "post-recovery probe");
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.to_healthy, 1);
  EXPECT_EQ(stats.load_state, LoadState::kHealthy);
  EXPECT_GE(stats.degraded_flushes, 1);
}

// ---------------------------------------------------------------------------
// SubmitWithRetry: the client-side backoff loop.
// ---------------------------------------------------------------------------

TEST(OverloadTest, SubmitWithRetryRidesOutAdmissionShed) {
  Fixture f;
  FailPointGuard guard;
  ServerOptions options;
  options.max_batch = 4;
  options.flush_deadline_us = 0;
  options.max_queue = 8;
  options.overload.enabled = false;  // pure bounded-admission shedding
  Server server(f.Snapshot(), options);

  // Stall the first flush 500ms and fill the queue to the brim: direct
  // submits shed, but the retry loop outlives the stall and lands.
  core::FailPoint::Arm("serve.slow_flush", /*arg=*/500'000, /*fires=*/1);
  std::vector<std::future<core::StatusOr<TopKResult>>> admitted;
  admitted.push_back(server.SubmitTopK(0, 10));
  int64_t sheds = 0;
  for (int64_t i = 1; i <= 20 && sheds == 0; ++i) {
    auto fut = server.SubmitTopK(i % 40, 10);
    if (fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready &&
        !fut.get().ok()) {
      ++sheds;
      continue;
    }
    admitted.push_back(std::move(fut));
  }
  ASSERT_EQ(sheds, 1) << "queue never filled";

  core::BackoffOptions backoff_options;
  backoff_options.initial_us = 2000;
  backoff_options.multiplier = 2.0;
  backoff_options.max_us = 50'000;
  backoff_options.seed = 11;
  core::Backoff backoff(backoff_options);
  auto result = SubmitWithRetry(server, 9, 10, /*timeout_us=*/0, backoff,
                                /*max_attempts=*/60);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(backoff.attempts(), 1) << "first attempt should have shed";
  ExpectBitwiseEqual(
      result->items,
      f.EngineReference(*server.current_snapshot(), 9, 10, Precision::kFp32),
      "retried request");
  for (auto& fut : admitted) ASSERT_TRUE(fut.get().ok());
}

TEST(OverloadTest, SubmitWithRetryDoesNotRetryNonRetryableFailures) {
  Fixture f;
  Server server(f.Snapshot(), ServerOptions{});
  core::Backoff backoff;
  // Spent budget: DeadlineExceeded at admission, returned without a retry.
  auto result = SubmitWithRetry(server, 0, 10, /*timeout_us=*/-1, backoff,
                                /*max_attempts=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(backoff.attempts(), 0);
}

}  // namespace
}  // namespace darec::serve
