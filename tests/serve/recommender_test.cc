#include "serve/recommender.h"

#include <cstdio>
#include <set>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/io.h"

namespace darec::serve {
namespace {

/// 3 users x 5 items; each user's training items are known so masking is
/// checkable. Embeddings are hand-built so scores are predictable.
struct Fixture {
  Fixture() {
    core::Rng rng(1);
    std::vector<data::Interaction> interactions;
    // User u interacted with items u and u+1 (train split keeps >= 1).
    for (int64_t u = 0; u < 3; ++u) {
      interactions.push_back({u, u});
      interactions.push_back({u, u + 1});
    }
    auto ds = data::Dataset::Create("serve-test", 3, 5, interactions,
                                    data::SplitRatio{1.0, 0.0, 0.0}, rng);
    DARE_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(ds).value());

    // User u points along axis u; item i = e_{i mod 3} * (1 + i).
    embeddings = tensor::Matrix(8, 3);
    for (int64_t u = 0; u < 3; ++u) embeddings(u, u) = 1.0f;
    for (int64_t i = 0; i < 5; ++i) {
      embeddings(3 + i, i % 3) = 1.0f + static_cast<float>(i);
    }
  }
  std::unique_ptr<data::Dataset> dataset;
  tensor::Matrix embeddings;
};

TEST(RecommenderTest, CreateValidatesShapes) {
  Fixture f;
  EXPECT_TRUE(Recommender::Create(f.embeddings, f.dataset.get()).ok());
  EXPECT_FALSE(Recommender::Create(tensor::Matrix(3, 4), f.dataset.get()).ok());
  EXPECT_FALSE(Recommender::Create(tensor::Matrix(8, 0), f.dataset.get()).ok());
  EXPECT_FALSE(Recommender::Create(f.embeddings, nullptr).ok());
}

TEST(RecommenderTest, TopKMasksTrainingItems) {
  Fixture f;
  auto rec = Recommender::Create(f.embeddings, f.dataset.get());
  ASSERT_TRUE(rec.ok());
  // User 0 trained on items {0, 1}; eligible: {2, 3, 4}.
  auto top = rec->RecommendTopK(0, 5);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 3u);
  std::set<int64_t> returned;
  for (const ScoredItem& s : *top) returned.insert(s.item);
  EXPECT_EQ(returned.count(0), 0u);
  EXPECT_EQ(returned.count(1), 0u);
}

TEST(RecommenderTest, TopKOrderedByScore) {
  Fixture f;
  auto rec = Recommender::Create(f.embeddings, f.dataset.get());
  ASSERT_TRUE(rec.ok());
  // User 0 (axis 0): eligible items {2,3,4}; item 3 has axis 0 scale 4
  // (3%3==0), item 2 axis 2 -> 0, item 4 axis 1 -> 0. Best = item 3.
  auto top = rec->RecommendTopK(0, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].item, 3);
  EXPECT_FLOAT_EQ((*top)[0].score, 4.0f);
  EXPECT_GE((*top)[0].score, (*top)[1].score);
}

TEST(RecommenderTest, ScoreMatchesInnerProduct) {
  Fixture f;
  auto rec = Recommender::Create(f.embeddings, f.dataset.get());
  ASSERT_TRUE(rec.ok());
  auto score = rec->Score(1, 1);  // User axis 1, item 1 axis 1 scale 2.
  ASSERT_TRUE(score.ok());
  EXPECT_FLOAT_EQ(*score, 2.0f);
  auto zero = rec->Score(1, 0);  // Orthogonal axes.
  ASSERT_TRUE(zero.ok());
  EXPECT_FLOAT_EQ(*zero, 0.0f);
}

TEST(RecommenderTest, BadIdsRejected) {
  Fixture f;
  auto rec = Recommender::Create(f.embeddings, f.dataset.get());
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->RecommendTopK(-1, 3).ok());
  EXPECT_FALSE(rec->RecommendTopK(3, 3).ok());
  EXPECT_FALSE(rec->RecommendTopK(0, 0).ok());
  EXPECT_FALSE(rec->Score(0, 5).ok());
  EXPECT_FALSE(rec->SimilarItems(5, 2).ok());
  EXPECT_FALSE(rec->SimilarItems(0, 0).ok());
}

TEST(RecommenderTest, SimilarItemsByCosine) {
  Fixture f;
  auto rec = Recommender::Create(f.embeddings, f.dataset.get());
  ASSERT_TRUE(rec.ok());
  // Item 0 is axis 0; items 3 (axis 0) should be most similar (cos = 1).
  auto similar = rec->SimilarItems(0, 2);
  ASSERT_TRUE(similar.ok());
  ASSERT_EQ(similar->size(), 2u);
  EXPECT_EQ((*similar)[0].item, 3);
  EXPECT_NEAR((*similar)[0].score, 1.0f, 1e-5f);
  EXPECT_LT((*similar)[1].score, 0.5f);
}

TEST(RecommenderTest, LoadRoundTrip) {
  Fixture f;
  const std::string path = ::testing::TempDir() + "/serve_embeddings.dmat";
  ASSERT_TRUE(tensor::SaveMatrix(path, f.embeddings).ok());
  auto rec = Recommender::Load(path, f.dataset.get());
  ASSERT_TRUE(rec.ok());
  auto top = rec->RecommendTopK(0, 1);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0].item, 3);
  EXPECT_FALSE(Recommender::Load(path + ".missing", f.dataset.get()).ok());
  std::remove(path.c_str());
}

TEST(RecommenderTest, KClampedToEligibleItems) {
  Fixture f;
  auto rec = Recommender::Create(f.embeddings, f.dataset.get());
  ASSERT_TRUE(rec.ok());
  auto top = rec->RecommendTopK(2, 100);
  ASSERT_TRUE(top.ok());
  // User 2 trained on {2, 3}: 3 eligible items remain.
  EXPECT_EQ(top->size(), 3u);
}

/// The unified k contract, exercised through BOTH entry points: non-positive
/// k is InvalidArgument; oversized k clamps to the user's eligible-item
/// count; and for any valid k the two paths agree bitwise.
TEST(RecommenderTest, KContractIsTheSameForSingleAndBatch) {
  Fixture f;
  auto rec = Recommender::Create(f.embeddings, f.dataset.get());
  ASSERT_TRUE(rec.ok());

  for (int64_t k : {0LL, -3LL}) {
    auto single = rec->RecommendTopK(0, k);
    auto batch = rec->RecommendTopKBatch({0}, k);
    EXPECT_FALSE(single.ok());
    EXPECT_FALSE(batch.ok());
    EXPECT_EQ(single.status().code(), batch.status().code()) << "k=" << k;
  }

  for (int64_t k : {1LL, 3LL, 100LL}) {
    auto batch = rec->RecommendTopKBatch({0, 1, 2}, k);
    ASSERT_TRUE(batch.ok()) << "k=" << k;
    for (int64_t u = 0; u < 3; ++u) {
      auto single = rec->RecommendTopK(u, k);
      ASSERT_TRUE(single.ok());
      // Clamp: never more than the eligible count (3 for every fixture user).
      EXPECT_LE(single->size(), 3u);
      const auto& from_batch = (*batch)[static_cast<size_t>(u)];
      ASSERT_EQ(single->size(), from_batch.size()) << "u=" << u << " k=" << k;
      for (size_t i = 0; i < single->size(); ++i) {
        EXPECT_EQ((*single)[i].item, from_batch[i].item);
        EXPECT_EQ((*single)[i].score, from_batch[i].score);
      }
    }
  }
}

/// The serving hot path must not allocate Matrix storage per request: after
/// one warm-up call, repeated RecommendTopK calls reuse pooled workspace
/// scratch (tensor::Workspace) end to end.
TEST(RecommenderTest, SingleUserTopKDoesNotAllocateMatrixStorageWhenWarm) {
  Fixture f;
  auto rec = Recommender::Create(f.embeddings, f.dataset.get());
  ASSERT_TRUE(rec.ok());
  // Warm-up sizes the pooled scratch buffers.
  ASSERT_TRUE(rec->RecommendTopK(0, 3).ok());

  const bool was_enabled = tensor::AllocStats::Enabled();
  tensor::AllocStats::SetEnabled(true);
  tensor::AllocStats::Reset();
  for (int64_t round = 0; round < 50; ++round) {
    auto top = rec->RecommendTopK(round % 3, 1 + round % 4);
    ASSERT_TRUE(top.ok());
  }
  const tensor::AllocStats::Snapshot steady = tensor::AllocStats::Take();
  tensor::AllocStats::SetEnabled(was_enabled);
  EXPECT_EQ(steady.allocations, 0)
      << "RecommendTopK allocated Matrix storage on the warm path";
}

}  // namespace
}  // namespace darec::serve
