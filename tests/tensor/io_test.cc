#include "tensor/io.h"

#include <cstdio>
#include <fstream>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"

namespace darec::tensor {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MatrixIoTest, RoundTripExact) {
  core::Rng rng(1);
  Matrix original = RandomNormal(17, 9, 1.0f, rng);
  const std::string path = TempPath("roundtrip.dmat");
  ASSERT_TRUE(SaveMatrix(path, original).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Binary format: bit-exact round trip.
  EXPECT_EQ(loaded->rows(), 17);
  EXPECT_EQ(loaded->cols(), 9);
  for (int64_t r = 0; r < 17; ++r) {
    for (int64_t c = 0; c < 9; ++c) {
      EXPECT_EQ(original(r, c), (*loaded)(r, c));
    }
  }
  std::remove(path.c_str());
}

TEST(MatrixIoTest, EmptyMatrixRoundTrip) {
  const std::string path = TempPath("empty.dmat");
  ASSERT_TRUE(SaveMatrix(path, Matrix()).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 0);
  EXPECT_EQ(loaded->cols(), 0);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, MissingFileIsNotFound) {
  auto loaded = LoadMatrix(TempPath("does_not_exist.dmat"));
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kNotFound);
}

TEST(MatrixIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.dmat");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTDMATxxxxxxxxxxxxxxxxxxxxxxxx";
  }
  auto loaded = LoadMatrix(path);
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, TruncatedPayloadRejected) {
  core::Rng rng(2);
  Matrix m = RandomNormal(8, 8, 1.0f, rng);
  const std::string path = TempPath("truncated.dmat");
  ASSERT_TRUE(SaveMatrix(path, m).ok());
  // Chop off the last bytes.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size() - 10));
  }
  auto loaded = LoadMatrix(path);
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, UnwritablePathFails) {
  EXPECT_FALSE(SaveMatrix("/nonexistent_dir/x.dmat", Matrix(1, 1)).ok());
  EXPECT_FALSE(SaveMatrixCsv("/nonexistent_dir/x.csv", Matrix(1, 1)).ok());
}

TEST(MatrixIoTest, CsvMatchesValues) {
  Matrix m = Matrix::FromVector(2, 2, {1.5f, -2.25f, 0.0f, 100.0f});
  const std::string path = TempPath("values.csv");
  ASSERT_TRUE(SaveMatrixCsv(path, m).ok());
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "1.5,-2.25");
  EXPECT_EQ(line2, "0,100");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace darec::tensor
