#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/alloc_stats.h"
#include "tensor/autograd.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

namespace darec::tensor {
namespace {

Matrix SmoothInput(int64_t rows, int64_t cols, float offset = 0.0f) {
  Matrix m(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      m(r, c) = 0.3f + 0.17f * static_cast<float>(r) -
                0.23f * static_cast<float>(c) + offset;
      if (m(r, c) > -0.05f && m(r, c) < 0.05f) m(r, c) = 0.11f;
    }
  }
  return m;
}

/// A small but representative step graph: matmul, activation, normalize,
/// reductions. Returns the scalar loss.
Variable BuildLoss(const Variable& w1, const Variable& w2) {
  Variable h = Tanh(MatMul(w1, w2));
  Variable n = RowL2Normalize(h);
  Variable sims = MatMul(n, n, false, true);
  return Add(Mean(Square(sims)), ScalarMul(SumSquares(w1), 0.01f));
}

TEST(GraphContextTest, SlotsAllocateOnceThenRecycle) {
  Variable w1 = Variable::Parameter(SmoothInput(6, 4));
  Variable w2 = Variable::Parameter(SmoothInput(4, 5, 0.1f));
  GraphContext ctx;

  int64_t first_step_nodes = 0;
  for (int step = 0; step < 5; ++step) {
    {
      GraphContext::Scope scope(&ctx);
      Variable loss = BuildLoss(w1, w2);
      Backward(loss);
    }
    if (step == 0) first_step_nodes = static_cast<int64_t>(ctx.live_nodes());
    EXPECT_EQ(static_cast<int64_t>(ctx.live_nodes()), first_step_nodes)
        << "identical steps must use identical node counts";
    w1.ClearGrad();
    w2.ClearGrad();
    ctx.Reset();
  }
  const GraphContext::Stats& stats = ctx.stats();
  EXPECT_EQ(stats.resets, 5);
  EXPECT_EQ(stats.slot_allocs, first_step_nodes)
      << "only the warm-up step may allocate node slots";
  EXPECT_EQ(stats.slot_reuses, 4 * first_step_nodes);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(GraphContextTest, SteadyStateStepsAllocateNoMatrixBuffers) {
  Variable w1 = Variable::Parameter(SmoothInput(6, 4));
  Variable w2 = Variable::Parameter(SmoothInput(4, 5, 0.1f));
  GraphContext ctx;

  auto run_step = [&] {
    GraphContext::Scope scope(&ctx);
    Variable loss = BuildLoss(w1, w2);
    Backward(loss);
    w1.ClearGrad();
    w2.ClearGrad();
  };
  // Warm-up populates arena slots, gradient capacity, and the workspace.
  run_step();
  ctx.Reset();

  const bool was_enabled = AllocStats::Enabled();
  AllocStats::SetEnabled(true);
  AllocStats::Reset();
  for (int step = 0; step < 10; ++step) {
    run_step();
    ctx.Reset();
  }
  AllocStats::Snapshot snap = AllocStats::Take();
  AllocStats::SetEnabled(was_enabled);
  EXPECT_EQ(snap.allocations, 0)
      << "steady-state steps allocated " << snap.allocations << " buffers ("
      << snap.bytes << " bytes)";
}

TEST(GraphContextTest, PooledGraphMatchesLegacyBitwise) {
  // The same computation with and without a context must agree bit for bit:
  // losses AND parameter gradients, across several accumulating steps.
  Variable w1a = Variable::Parameter(SmoothInput(6, 4));
  Variable w2a = Variable::Parameter(SmoothInput(4, 5, 0.1f));
  Variable w1b = Variable::Parameter(SmoothInput(6, 4));
  Variable w2b = Variable::Parameter(SmoothInput(4, 5, 0.1f));
  GraphContext ctx;

  for (int step = 0; step < 3; ++step) {
    float pooled_loss;
    {
      GraphContext::Scope scope(&ctx);
      Variable loss = BuildLoss(w1a, w2a);
      pooled_loss = loss.scalar();
      Backward(loss);
    }
    ctx.Reset();

    Variable legacy = BuildLoss(w1b, w2b);
    const float legacy_loss = legacy.scalar();
    Backward(legacy);

    ASSERT_EQ(pooled_loss, legacy_loss);
    ASSERT_EQ(w1a.grad().rows(), w1b.grad().rows());
    for (int64_t r = 0; r < w1a.grad().rows(); ++r) {
      for (int64_t c = 0; c < w1a.grad().cols(); ++c) {
        ASSERT_EQ(w1a.grad()(r, c), w1b.grad()(r, c))
            << "grad drift at step " << step << " (" << r << "," << c << ")";
      }
    }
    // Gradients keep accumulating across steps (no ClearGrad) to exercise
    // the accumulate-into-kept-capacity path too.
  }
}

TEST(GraphContextTest, HeldVariableSurvivesReset) {
  GraphContext ctx;
  Variable held;
  {
    GraphContext::Scope scope(&ctx);
    Variable a = Variable::Constant(SmoothInput(3, 3));
    held = Square(a);  // Pooled node kept across the reset below.
  }
  const float expected = held.value()(1, 2);
  ctx.Reset();
  // Only the held result is evicted; the constant's slot (no longer
  // referenced — a constant input wires no parent edge) is recycled.
  EXPECT_EQ(ctx.stats().evictions, 1);
  EXPECT_EQ(held.value()(1, 2), expected) << "evicted node must keep its value";

  // The arena keeps working after the hand-off.
  {
    GraphContext::Scope scope(&ctx);
    Variable b = Variable::Constant(SmoothInput(3, 3));
    EXPECT_EQ(Sum(b).value()(0, 0), SumAll(SmoothInput(3, 3)));
  }
  ctx.Reset();
  EXPECT_EQ(held.value()(1, 2), expected);
}

TEST(GraphContextTest, BackwardReleasesDeadIntermediateValues) {
  GraphContext ctx;
  Workspace& ws = Workspace::Global();
  GraphContext::Scope scope(&ctx);
  Variable w = Variable::Parameter(SmoothInput(4, 4));
  Variable mid = Square(w);
  Variable loss = Sum(mid);
  const int64_t pooled_before = ws.GetStats().pooled_buffers;
  Backward(loss);
  // The intermediate's buffer went back to the pool mid-backward...
  EXPECT_TRUE(mid.value().empty())
      << "pooled intermediate value should be released during Backward";
  EXPECT_GT(ws.GetStats().pooled_buffers, pooled_before);
  // ...but the root (read after Backward) and the parameter survive.
  EXPECT_FALSE(loss.value().empty());
  EXPECT_FALSE(w.value().empty());
  EXPECT_EQ(loss.value()(0, 0), SumAll(Square(w).value()));
}

TEST(GraphContextTest, ClearGradKeepsCapacityAndEmptiness) {
  Variable w = Variable::Parameter(SmoothInput(8, 8));
  Variable loss = Sum(Square(w));
  Backward(loss);
  ASSERT_FALSE(w.grad().empty());
  const int64_t cap = w.grad().capacity();
  ASSERT_GE(cap, 64);

  w.ClearGrad();
  // empty() is load-bearing: optimizers skip parameters with empty grads.
  EXPECT_TRUE(w.grad().empty());
  EXPECT_EQ(w.grad().rows(), 0);
  EXPECT_EQ(w.grad().cols(), 0);
  // ...but the capacity survives, so re-accumulation does not allocate.
  EXPECT_EQ(w.grad().capacity(), cap);

  const bool was_enabled = AllocStats::Enabled();
  AllocStats::SetEnabled(true);
  AllocStats::Reset();
  Variable loss2 = Sum(Square(w));
  Backward(loss2);
  // (Without a context the op values allocate; only check the grad matrix.)
  EXPECT_EQ(w.grad().capacity(), cap);
  AllocStats::SetEnabled(was_enabled);
  EXPECT_FALSE(w.grad().empty());
}

TEST(GraphContextTest, NegativeZeroGradientSurvivesPooling) {
  // First accumulation must bitwise-copy: adding -0.0f onto a zeroed buffer
  // would flip it to +0.0f. ScalarMul(x, -0.0f)'s gradient is exactly -0.0.
  GraphContext ctx;
  Variable w = Variable::Parameter(Matrix::Full(1, 1, 1.0f));
  {
    GraphContext::Scope scope(&ctx);
    Variable loss = Sum(ScalarMul(w, -0.0f));
    Backward(loss);
  }
  ctx.Reset();
  const float g = w.grad()(0, 0);
  EXPECT_EQ(g, 0.0f);
  EXPECT_TRUE(std::signbit(g)) << "gradient -0.0 was bleached to +0.0";
}

TEST(GraphContextTest, NestedScopesRestorePreviousContext) {
  GraphContext outer_ctx;
  EXPECT_EQ(GraphContext::Current(), nullptr);
  {
    GraphContext::Scope outer(&outer_ctx);
    EXPECT_EQ(GraphContext::Current(), &outer_ctx);
    {
      GraphContext::Scope inner(nullptr);  // Force the legacy path.
      EXPECT_EQ(GraphContext::Current(), nullptr);
      Variable v = Variable::Constant(SmoothInput(2, 2));
      EXPECT_FALSE(v.node()->pooled());
    }
    EXPECT_EQ(GraphContext::Current(), &outer_ctx);
    Variable v = Variable::Constant(SmoothInput(2, 2));
    EXPECT_TRUE(v.node()->pooled());
  }
  EXPECT_EQ(GraphContext::Current(), nullptr);
  outer_ctx.Reset();
}

TEST(GraphContextTest, ParametersNeverPooled) {
  GraphContext ctx;
  GraphContext::Scope scope(&ctx);
  Variable p = Variable::Parameter(SmoothInput(2, 2));
  EXPECT_FALSE(p.node()->pooled())
      << "parameters must keep heap nodes: they outlive every step";
  EXPECT_EQ(ctx.live_nodes(), 0u);
}

}  // namespace
}  // namespace darec::tensor
