#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/failpoint.h"
#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/io.h"

namespace darec::tensor {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A well-formed DMAT header (magic, version 1, dims) with no payload.
std::string Header(int64_t rows, int64_t cols, uint32_t version = 1) {
  std::string bytes = "DMAT";
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&rows), sizeof(rows));
  bytes.append(reinterpret_cast<const char*>(&cols), sizeof(cols));
  return bytes;
}

TEST(MatrixIoCorruptionTest, TruncatedHeaderIsInvalidArgument) {
  const std::string path = TempPath("trunc_header.dmat");
  // Every prefix of the 24-byte header must be rejected, never read past.
  const std::string header = Header(2, 2);
  for (size_t len = 0; len < header.size(); ++len) {
    WriteBytes(path, header.substr(0, len));
    auto loaded = LoadMatrix(path);
    EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument)
        << "header prefix of " << len << " bytes";
  }
  std::remove(path.c_str());
}

TEST(MatrixIoCorruptionTest, TruncatedPayloadIsInvalidArgument) {
  const std::string path = TempPath("trunc_payload.dmat");
  std::string bytes = Header(4, 4);
  // 15 of the declared 16 floats.
  bytes.append(15 * sizeof(float), '\0');
  WriteBytes(path, bytes);
  auto loaded = LoadMatrix(path);
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MatrixIoCorruptionTest, BadMagicIsInvalidArgument) {
  const std::string path = TempPath("bad_magic.dmat");
  std::string bytes = Header(1, 1);
  bytes.append(sizeof(float), '\0');
  bytes[0] = 'X';
  WriteBytes(path, bytes);
  auto loaded = LoadMatrix(path);
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MatrixIoCorruptionTest, UnsupportedVersionIsFailedPrecondition) {
  const std::string path = TempPath("bad_version.dmat");
  std::string bytes = Header(1, 1, /*version=*/2);
  bytes.append(sizeof(float), '\0');
  WriteBytes(path, bytes);
  auto loaded = LoadMatrix(path);
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(MatrixIoCorruptionTest, OverflowingDimsAreInvalidArgument) {
  const std::string path = TempPath("overflow_dims.dmat");
  // rows * cols == 2^64 wraps int64_t to 0: each dim must be validated on
  // its own, the product must be computed overflow-safely.
  const int64_t big = int64_t{1} << 32;
  WriteBytes(path, Header(big, big));
  auto loaded = LoadMatrix(path);
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);

  // Also a pair whose product is positive but past the element cap.
  WriteBytes(path, Header(int64_t{1} << 20, int64_t{1} << 20));
  loaded = LoadMatrix(path);
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);

  // Negative dims.
  WriteBytes(path, Header(-1, 4));
  loaded = LoadMatrix(path);
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MatrixIoCorruptionTest, AbortedSaveNeverPublishesATornFile) {
  namespace fs = std::filesystem;
  const std::string path = TempPath("atomic_save.dmat");
  core::Rng rng(5);
  Matrix original = RandomNormal(8, 8, 1.0f, rng);
  ASSERT_TRUE(SaveMatrix(path, original).ok());

  // Kill the rewrite after 10 bytes: the previous file must survive intact.
  Matrix replacement = RandomNormal(8, 8, 1.0f, rng);
  core::FailPoint::Arm("fsio.write_abort", /*arg=*/10, /*fires=*/1);
  EXPECT_EQ(SaveMatrix(path, replacement).code(), core::StatusCode::kInternal);
  core::FailPoint::DisarmAll();

  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int64_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->data()[i], original.data()[i]);
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(MatrixIoCorruptionTest, AbortedCsvSaveLeavesOldContents) {
  const std::string path = TempPath("atomic_save.csv");
  Matrix m(1, 2);
  m(0, 0) = 1.0f;
  m(0, 1) = 2.0f;
  ASSERT_TRUE(SaveMatrixCsv(path, m).ok());
  std::string before;
  {
    std::ifstream in(path);
    std::getline(in, before);
  }

  core::FailPoint::Arm("fsio.write_abort", /*arg=*/1, /*fires=*/1);
  EXPECT_FALSE(SaveMatrixCsv(path, Matrix(3, 3)).ok());
  core::FailPoint::DisarmAll();

  std::string after;
  {
    std::ifstream in(path);
    std::getline(in, after);
  }
  EXPECT_EQ(after, before);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace darec::tensor
