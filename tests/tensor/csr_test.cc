#include "tensor/csr.h"

#include <cmath>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/matrix.h"

namespace darec::tensor {
namespace {

CsrMatrix MakeExample() {
  // [1 0 2]
  // [0 3 0]
  return CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}});
}

TEST(CsrTest, FromTripletsBasic) {
  CsrMatrix m = MakeExample();
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.At(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 3.0f);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 1);
}

TEST(CsrTest, DuplicateTripletsSum) {
  CsrMatrix m = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.At(0, 0), 3.5f);
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m(3, 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_FLOAT_EQ(m.At(2, 3), 0.0f);
  Matrix out = m.Multiply(Matrix::Full(4, 2, 1.0f));
  EXPECT_TRUE(AllClose(out, Matrix(3, 2)));
}

TEST(CsrTest, MultiplyMatchesDense) {
  CsrMatrix m = MakeExample();
  Matrix x = Matrix::FromVector(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix sparse_result = m.Multiply(x);
  Matrix dense_result = MatMul(m.ToDense(), x);
  EXPECT_TRUE(AllClose(sparse_result, dense_result));
}

TEST(CsrTest, TransposeMultiplyMatchesDense) {
  CsrMatrix m = MakeExample();
  Matrix x = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  Matrix sparse_result = m.TransposeMultiply(x);
  Matrix dense_result = MatMul(Transpose(m.ToDense()), x);
  EXPECT_TRUE(AllClose(sparse_result, dense_result));
}

TEST(CsrTest, TransposedRoundTrip) {
  CsrMatrix m = MakeExample();
  CsrMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_TRUE(AllClose(t.ToDense(), Transpose(m.ToDense())));
  EXPECT_TRUE(AllClose(t.Transposed().ToDense(), m.ToDense()));
}

TEST(CsrTest, RowSums) {
  CsrMatrix m = MakeExample();
  Matrix sums = m.RowSums();
  EXPECT_FLOAT_EQ(sums(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(sums(1, 0), 3.0f);
}

TEST(CsrTest, SymmetricNormalization) {
  // Adjacency of a single edge (bipartite 1 user, 1 item in a 2x2 block).
  CsrMatrix adj = CsrMatrix::FromTriplets(2, 2, {{0, 1, 1.0f}, {1, 0, 1.0f}});
  CsrMatrix norm = adj.SymmetricNormalized();
  // Degrees are all 1 -> values unchanged.
  EXPECT_FLOAT_EQ(norm.At(0, 1), 1.0f);

  // Star: node 0 connected to 1 and 2. deg(0)=2, deg(1)=deg(2)=1.
  CsrMatrix star = CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0f}, {0, 2, 1.0f}, {1, 0, 1.0f}, {2, 0, 1.0f}});
  CsrMatrix nstar = star.SymmetricNormalized();
  const float expected = 1.0f / std::sqrt(2.0f);
  EXPECT_NEAR(nstar.At(0, 1), expected, 1e-6f);
  EXPECT_NEAR(nstar.At(1, 0), expected, 1e-6f);
}

TEST(CsrTest, SymmetricNormalizationZeroDegree) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0f}});
  CsrMatrix norm = m.SymmetricNormalized();
  EXPECT_FLOAT_EQ(norm.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(norm.At(1, 1), 0.0f);
}

TEST(CsrTest, DropEntriesKeepAllAndNone) {
  core::Rng rng(5);
  CsrMatrix m = MakeExample();
  EXPECT_EQ(m.DropEntries(1.0, rng).nnz(), m.nnz());
  EXPECT_EQ(m.DropEntries(0.0, rng).nnz(), 0);
}

TEST(CsrTest, DropEntriesApproximatesRate) {
  core::Rng rng(9);
  std::vector<Triplet> triplets;
  for (int64_t i = 0; i < 200; ++i) {
    for (int64_t j = 0; j < 10; ++j) triplets.push_back({i, j, 1.0f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(200, 10, std::move(triplets));
  CsrMatrix dropped = m.DropEntries(0.7, rng);
  const double rate = static_cast<double>(dropped.nnz()) / m.nnz();
  EXPECT_NEAR(rate, 0.7, 0.05);
}

TEST(CsrTest, ToDenseMatchesAt) {
  CsrMatrix m = MakeExample();
  Matrix d = m.ToDense();
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) {
      EXPECT_FLOAT_EQ(d(r, c), m.At(r, c));
    }
  }
}

}  // namespace
}  // namespace darec::tensor
