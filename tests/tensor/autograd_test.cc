#include "tensor/autograd.h"

#include <memory>

#include "gtest/gtest.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace darec::tensor {
namespace {

using darec::testing::ExpectGradientsMatch;

Matrix SmoothInput(int64_t rows, int64_t cols, float offset = 0.0f) {
  // Deterministic values away from ReLU kinks and softmax ties.
  Matrix m(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      m(r, c) = 0.3f + 0.17f * static_cast<float>(r) -
                0.23f * static_cast<float>(c) + offset;
      if (m(r, c) > -0.05f && m(r, c) < 0.05f) m(r, c) = 0.11f;
    }
  }
  return m;
}

TEST(AutogradTest, BackwardRequiresScalarRoot) {
  Variable v = Variable::Parameter(SmoothInput(2, 2));
  EXPECT_DEATH(Backward(v), "scalar");
}

TEST(AutogradTest, SimpleChainGradient) {
  // f(x) = sum(2x) -> df/dx = 2 everywhere.
  Variable x = Variable::Parameter(SmoothInput(2, 3));
  Variable loss = Sum(ScalarMul(x, 2.0f));
  Backward(loss);
  EXPECT_TRUE(AllClose(x.grad(), Matrix::Full(2, 3, 2.0f)));
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Variable x = Variable::Parameter(SmoothInput(1, 2));
  Backward(Sum(x));
  Backward(Sum(x));
  EXPECT_TRUE(AllClose(x.grad(), Matrix::Full(1, 2, 2.0f)));
  x.ClearGrad();
  EXPECT_TRUE(x.grad().empty());
}

TEST(AutogradTest, ReusedVariableAccumulates) {
  // f(x) = sum(x + x) -> df/dx = 2.
  Variable x = Variable::Parameter(SmoothInput(2, 2));
  Backward(Sum(Add(x, x)));
  EXPECT_TRUE(AllClose(x.grad(), Matrix::Full(2, 2, 2.0f)));
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  Variable x = Variable::Parameter(SmoothInput(2, 2));
  Variable c = Variable::Constant(SmoothInput(2, 2, 1.0f));
  Backward(Sum(Mul(x, c)));
  EXPECT_FALSE(x.grad().empty());
  EXPECT_TRUE(c.grad().empty());
}

TEST(AutogradTest, MatMulGradients) {
  for (bool trans_a : {false, true}) {
    for (bool trans_b : {false, true}) {
      Matrix a_init = trans_a ? SmoothInput(3, 2) : SmoothInput(2, 3);
      Matrix b_init = trans_b ? SmoothInput(4, 3, 0.5f) : SmoothInput(3, 4, 0.5f);
      std::vector<Variable> params{Variable::Parameter(a_init),
                                   Variable::Parameter(b_init)};
      ExpectGradientsMatch(
          [trans_a, trans_b](const std::vector<Variable>& p) {
            return Sum(Square(MatMul(p[0], p[1], trans_a, trans_b)));
          },
          params);
    }
  }
}

TEST(AutogradTest, SpMMGradient) {
  auto s = std::make_shared<CsrMatrix>(
      CsrMatrix::FromTriplets(3, 2, {{0, 0, 1.0f}, {1, 1, 2.0f}, {2, 0, -1.5f}}));
  std::vector<Variable> params{Variable::Parameter(SmoothInput(2, 3))};
  ExpectGradientsMatch(
      [s](const std::vector<Variable>& p) { return Sum(Square(SpMM(s, p[0]))); },
      params);
}

TEST(AutogradTest, ElementwiseBinaryGradients) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(2, 3)),
                               Variable::Parameter(SmoothInput(2, 3, 0.7f))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(Add(p[0], p[1]))); },
      params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(Sub(p[0], p[1]))); },
      params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(Mul(p[0], p[1]))); },
      params);
}

TEST(AutogradTest, AddRowBroadcastGradient) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(3, 2)),
                               Variable::Parameter(SmoothInput(1, 2, 0.4f))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        return Sum(Square(AddRowBroadcast(p[0], p[1])));
      },
      params);
}

TEST(AutogradTest, ScalarOpsGradient) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(2, 2))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        return Sum(Square(AddScalar(ScalarMul(p[0], 1.7f), -0.3f)));
      },
      params);
}

TEST(AutogradTest, UnaryActivationGradients) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(3, 3))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(Relu(p[0]))); }, params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(LeakyRelu(p[0]))); },
      params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(Sigmoid(p[0]))); },
      params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(Tanh(p[0]))); }, params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(Exp(p[0]))); }, params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(Softplus(p[0]))); },
      params);
}

TEST(AutogradTest, LogAndSquareGradients) {
  // Strictly positive inputs for log.
  Matrix pos = SmoothInput(2, 2, 2.0f);
  std::vector<Variable> params{Variable::Parameter(pos)};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Log(p[0])); }, params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(p[0])); }, params);
}

TEST(AutogradTest, RowL2NormalizeGradient) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(3, 4, 0.6f))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        // Weighted sum so the gradient is not identically zero on the sphere.
        Variable weights = Variable::Constant(SmoothInput(3, 4, 1.5f));
        return Sum(Mul(RowL2Normalize(p[0]), weights));
      },
      params);
}

TEST(AutogradTest, ConcatAndSliceGradients) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(2, 3)),
                               Variable::Parameter(SmoothInput(3, 3, 0.9f))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        Variable cat = ConcatRows(p[0], p[1]);
        return Sum(Square(SliceRows(cat, 1, 3)));
      },
      params);
}

TEST(AutogradTest, GatherRowsGradientWithDuplicates) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(4, 2))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        return Sum(Square(GatherRows(p[0], {0, 2, 2, 3})));
      },
      params);
}

TEST(AutogradTest, ReductionGradients) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(3, 2))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Mean(Square(p[0])); }, params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return SumSquares(p[0]); }, params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(Square(RowSum(p[0]))); },
      params);
}

TEST(AutogradTest, SoftmaxGradient) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(2, 4))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        Variable weights = Variable::Constant(SmoothInput(2, 4, 2.0f));
        return Sum(Mul(SoftmaxRows(p[0]), weights));
      },
      params);
}

TEST(AutogradTest, RowLogSumExpGradient) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(3, 3))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return Sum(RowLogSumExp(p[0])); }, params);
}

TEST(AutogradTest, TakeDiagonalGradient) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(3, 3))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        return Sum(Square(TakeDiagonal(MatMul(p[0], p[0], false, true))));
      },
      params);
}

TEST(AutogradTest, CompositeLossGradients) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(3, 4)),
                               Variable::Parameter(SmoothInput(3, 4, 0.8f))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        return BprLoss(RowDot(p[0], p[1]), RowDot(p[0], ScalarMul(p[1], 0.5f)));
      },
      params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return InfoNceLoss(p[0], p[1], 0.5f); },
      params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return MseLoss(p[0], p[1]); }, params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) { return L2Penalty({p[0], p[1]}); }, params);
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        return Sum(Square(CosineRowSimilarity(p[0], p[1])));
      },
      params);
}

TEST(AutogradTest, MeanOfGradient) {
  std::vector<Variable> params{Variable::Parameter(SmoothInput(2, 2)),
                               Variable::Parameter(SmoothInput(2, 2, 0.5f)),
                               Variable::Parameter(SmoothInput(2, 2, 1.0f))};
  ExpectGradientsMatch(
      [](const std::vector<Variable>& p) {
        return Sum(Square(MeanOf({p[0], p[1], p[2]})));
      },
      params);
}

TEST(AutogradTest, DetachBlocksGradient) {
  Variable x = Variable::Parameter(SmoothInput(2, 2));
  Variable detached = Detach(x);
  EXPECT_TRUE(AllClose(detached.value(), x.value()));
  Backward(Sum(Square(detached)));
  EXPECT_TRUE(x.grad().empty());
  EXPECT_FALSE(detached.requires_grad());

  // Mixed path: gradient flows through the live branch only.
  Backward(Sum(Mul(x, Detach(x))));
  ASSERT_FALSE(x.grad().empty());
  EXPECT_TRUE(AllClose(x.grad(), x.value()));  // d/dx (x * const_x) = const_x.
}

TEST(AutogradTest, DropoutZeroProbIsIdentity) {
  core::Rng rng(3);
  Variable x = Variable::Parameter(SmoothInput(2, 2));
  Variable y = Dropout(x, 0.0f, rng);
  EXPECT_TRUE(AllClose(y.value(), x.value()));
}

TEST(AutogradTest, DropoutMaskConsistentInBackward) {
  core::Rng rng(3);
  Variable x = Variable::Parameter(Matrix::Full(10, 10, 1.0f));
  Variable y = Dropout(x, 0.5f, rng);
  Backward(Sum(y));
  // Gradient equals the mask: each entry 0 or 2 (= 1/keep).
  int zeros = 0, twos = 0;
  for (int64_t r = 0; r < 10; ++r) {
    for (int64_t c = 0; c < 10; ++c) {
      float g = x.grad()(r, c);
      if (g == 0.0f) {
        ++zeros;
      } else {
        EXPECT_FLOAT_EQ(g, 2.0f);
        ++twos;
      }
      EXPECT_FLOAT_EQ(y.value()(r, c), g);
    }
  }
  EXPECT_GT(zeros, 10);
  EXPECT_GT(twos, 10);
}

TEST(AutogradTest, InfoNceIsLowWhenAligned) {
  // Identical, well-separated rows: diagonal logits dominate -> small loss.
  Matrix base(4, 8);
  for (int64_t r = 0; r < 4; ++r) base(r, 2 * r) = 5.0f;
  Variable a = Variable::Parameter(base);
  Variable b = Variable::Parameter(base);
  float aligned = InfoNceLoss(a, b, 0.1f).scalar();

  Matrix other(4, 8);
  for (int64_t r = 0; r < 4; ++r) other(r, 7 - 2 * r) = 5.0f;  // Mismatched rows.
  Variable c = Variable::Parameter(other);
  float misaligned = InfoNceLoss(a, c, 0.1f).scalar();
  EXPECT_LT(aligned, misaligned);
}

TEST(AutogradTest, BprLossOrdersScores) {
  Variable good_pos = Variable::Constant(Matrix::Full(3, 1, 4.0f));
  Variable bad_pos = Variable::Constant(Matrix::Full(3, 1, -4.0f));
  Variable neg = Variable::Constant(Matrix::Full(3, 1, 0.0f));
  EXPECT_LT(BprLoss(good_pos, neg).scalar(), BprLoss(bad_pos, neg).scalar());
}

}  // namespace
}  // namespace darec::tensor
