#include "tensor/workspace.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/alloc_stats.h"
#include "tensor/matrix.h"

namespace darec::tensor {
namespace {

TEST(WorkspaceTest, AcquireForGivesEmptyShapedCapacity) {
  Workspace ws;
  Matrix m = ws.AcquireFor(100);
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_GE(m.capacity(), 100);
  EXPECT_EQ(ws.GetStats().misses, 1);
}

TEST(WorkspaceTest, AcquireIsZeroFilledDropIn) {
  Workspace ws;
  // Dirty a buffer, release it, re-acquire shaped: must look freshly zeroed.
  Matrix m = ws.Acquire(4, 5);
  m.Fill(7.0f);
  ws.Release(std::move(m));
  Matrix again = ws.Acquire(4, 5);
  EXPECT_EQ(again.rows(), 4);
  EXPECT_EQ(again.cols(), 5);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 5; ++c) EXPECT_EQ(again(r, c), 0.0f);
  }
  EXPECT_EQ(ws.GetStats().hits, 1);
}

TEST(WorkspaceTest, ReleaseReacquireRoundTripsToSameBucket) {
  // Any acquire size rounds capacity up to a power of two, so releasing and
  // re-acquiring the same size is always a pool hit with the same capacity.
  // (One fresh workspace per size: in a shared pool a nearby size class may
  // legitimately serve the request from a neighbouring bucket.)
  for (int64_t n : {1, 2, 3, 60, 64, 65, 1000, 4096, 5000}) {
    Workspace ws;
    Matrix m = ws.AcquireFor(n);
    const int64_t cap = m.capacity();
    ws.Release(std::move(m));
    Matrix back = ws.AcquireFor(n);
    EXPECT_EQ(back.capacity(), cap) << "n=" << n;
    ws.Release(std::move(back));
    Workspace::Stats stats = ws.GetStats();
    EXPECT_EQ(stats.misses, 1) << "n=" << n;
    EXPECT_EQ(stats.hits, 1) << "n=" << n;
  }
}

TEST(WorkspaceTest, SteadyStateAcquiresAllocateNothing) {
  Workspace ws;
  // Warm up with the shapes a "step" uses.
  std::vector<Matrix> held;
  for (int64_t n : {64, 256, 1024}) held.push_back(ws.AcquireFor(n));
  for (Matrix& m : held) ws.Release(std::move(m));
  held.clear();

  const bool was_enabled = AllocStats::Enabled();
  AllocStats::SetEnabled(true);
  AllocStats::Reset();
  for (int step = 0; step < 10; ++step) {
    for (int64_t n : {64, 256, 1024}) held.push_back(ws.AcquireFor(n));
    for (Matrix& m : held) ws.Release(std::move(m));
    held.clear();
  }
  AllocStats::Snapshot snap = AllocStats::Take();
  AllocStats::SetEnabled(was_enabled);
  EXPECT_EQ(snap.allocations, 0);
  EXPECT_EQ(snap.bytes, 0);
}

TEST(WorkspaceTest, StatsTrackPooledBuffersAndBytes) {
  Workspace ws;
  Matrix a = ws.AcquireFor(100);  // capacity 128
  Matrix b = ws.AcquireFor(100);
  const int64_t cap = a.capacity();
  ws.Release(std::move(a));
  ws.Release(std::move(b));
  Workspace::Stats stats = ws.GetStats();
  EXPECT_EQ(stats.releases, 2);
  EXPECT_EQ(stats.pooled_buffers, 2);
  EXPECT_EQ(stats.pooled_bytes, 2 * cap * static_cast<int64_t>(sizeof(float)));

  ws.Clear();
  stats = ws.GetStats();
  EXPECT_EQ(stats.pooled_buffers, 0);
  EXPECT_EQ(stats.pooled_bytes, 0);
}

TEST(WorkspaceTest, ResetStatsKeepsPoolAccounting) {
  Workspace ws;
  Matrix m = ws.AcquireFor(64);
  ws.Release(std::move(m));
  ws.ResetStats();
  Workspace::Stats stats = ws.GetStats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.releases, 0);
  EXPECT_EQ(stats.pooled_buffers, 1);  // The buffer is still pooled.
}

TEST(WorkspaceTest, ReleasingEmptyMatrixIsIgnored) {
  Workspace ws;
  ws.Release(Matrix());
  EXPECT_EQ(ws.GetStats().releases, 0);
  EXPECT_EQ(ws.GetStats().pooled_buffers, 0);
}

TEST(WorkspaceTest, OverfullBucketDiscards) {
  Workspace ws;
  // Fill one bucket past its cap; the overflow must be dropped, not hoarded.
  const int64_t n = 64;
  const int total = 300;  // > kMaxBuffersPerBucket (256)
  std::vector<Matrix> held;
  held.reserve(total);
  for (int i = 0; i < total; ++i) held.push_back(ws.AcquireFor(n));
  for (Matrix& m : held) ws.Release(std::move(m));
  Workspace::Stats stats = ws.GetStats();
  EXPECT_EQ(stats.releases, total);
  EXPECT_EQ(stats.discarded, total - 256);
  EXPECT_EQ(stats.pooled_buffers, 256);
}

TEST(WorkspaceTest, ScratchMatrixReleasesOnDestruction) {
  Workspace ws;
  {
    ScratchMatrix s(ws, 3, 4);
    EXPECT_EQ(s->rows(), 3);
    (*s)(0, 0) = 1.0f;
  }
  EXPECT_EQ(ws.GetStats().pooled_buffers, 1);
  {
    ScratchMatrix s(ws, 3, 4);  // Round trip: the same buffer comes back.
    EXPECT_EQ((*s)(0, 0), 0.0f) << "Acquire must zero-fill reused buffers";
  }
  EXPECT_EQ(ws.GetStats().hits, 1);
}

TEST(WorkspaceTest, ScratchMatrixMoveTransfersOwnership) {
  Workspace ws;
  {
    ScratchMatrix a(ws, 2, 2);
    ScratchMatrix b(std::move(a));
    EXPECT_EQ(b->rows(), 2);
  }  // Exactly one release.
  EXPECT_EQ(ws.GetStats().releases, 1);
  EXPECT_EQ(ws.GetStats().pooled_buffers, 1);
}

// TSan-targeted: concurrent acquire/release from many threads. Run under
// scripts/check.sh's thread-sanitizer pass.
TEST(WorkspaceTest, ConcurrentAcquireReleaseIsSafe) {
  Workspace ws;
  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::atomic<int64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ws, &checksum, t] {
      for (int i = 0; i < kIterations; ++i) {
        const int64_t n = 16 + 16 * ((t + i) % 7);
        Matrix m = ws.AcquireFor(n);
        m.ResetShape(1, n);
        m(0, 0) = static_cast<float>(t);
        checksum.fetch_add(static_cast<int64_t>(m(0, 0)),
                           std::memory_order_relaxed);
        ws.Release(std::move(m));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(checksum.load(), kIterations * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
  Workspace::Stats stats = ws.GetStats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIterations);
  EXPECT_EQ(stats.releases, kThreads * kIterations);
}

TEST(WorkspaceTest, GlobalIsASingleton) {
  EXPECT_EQ(&Workspace::Global(), &Workspace::Global());
}

}  // namespace
}  // namespace darec::tensor
