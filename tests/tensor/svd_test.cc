#include "tensor/svd.h"

#include <cmath>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/init.h"

namespace darec::tensor {
namespace {

TEST(SvdTest, ExactOnLowRankMatrix) {
  // Build a rank-2 matrix A = a₁ b₁ᵀ + a₂ b₂ᵀ as a sparse matrix; rank-2
  // truncated SVD must reconstruct it (near) exactly.
  core::Rng rng(1);
  Matrix a = RandomNormal(12, 2, 1.0f, rng);
  Matrix b = RandomNormal(9, 2, 1.0f, rng);
  Matrix dense = MatMul(a, b, false, true);
  std::vector<Triplet> triplets;
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      triplets.push_back({r, c, dense(r, c)});
    }
  }
  CsrMatrix sparse = CsrMatrix::FromTriplets(12, 9, std::move(triplets));
  core::Rng svd_rng(2);
  TruncatedSvd svd = ComputeTruncatedSvd(sparse, 2, 8, svd_rng);
  EXPECT_TRUE(AllClose(SvdReconstruct(svd), dense, 1e-3f));
}

TEST(SvdTest, SingularValuesSortedNonNegative) {
  core::Rng rng(3);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 120; ++i) {
    triplets.push_back({rng.UniformInt(20), rng.UniformInt(15),
                        static_cast<float>(rng.Normal())});
  }
  CsrMatrix sparse = CsrMatrix::FromTriplets(20, 15, std::move(triplets));
  TruncatedSvd svd = ComputeTruncatedSvd(sparse, 5, 8, rng);
  for (size_t k = 0; k < svd.singular_values.size(); ++k) {
    EXPECT_GE(svd.singular_values[k], 0.0f);
    if (k > 0) {
      EXPECT_LE(svd.singular_values[k], svd.singular_values[k - 1] + 1e-4f);
    }
  }
}

TEST(SvdTest, ColumnsOrthonormal) {
  core::Rng rng(4);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 200; ++i) {
    triplets.push_back({rng.UniformInt(25), rng.UniformInt(25),
                        static_cast<float>(rng.Normal())});
  }
  CsrMatrix sparse = CsrMatrix::FromTriplets(25, 25, std::move(triplets));
  TruncatedSvd svd = ComputeTruncatedSvd(sparse, 4, 8, rng);
  Matrix utu = MatMul(svd.u, svd.u, true, false);
  Matrix vtv = MatMul(svd.v, svd.v, true, false);
  EXPECT_TRUE(AllClose(utu, Matrix::Identity(4), 2e-2f));
  EXPECT_TRUE(AllClose(vtv, Matrix::Identity(4), 2e-2f));
}

TEST(SvdTest, LeadingValueMatchesPowerIteration) {
  // Diagonal matrix: singular values are the |diagonal| entries.
  std::vector<Triplet> triplets{{0, 0, 5.0f}, {1, 1, 3.0f}, {2, 2, 1.0f}};
  CsrMatrix diag = CsrMatrix::FromTriplets(3, 3, std::move(triplets));
  core::Rng rng(5);
  TruncatedSvd svd = ComputeTruncatedSvd(diag, 2, 12, rng);
  EXPECT_NEAR(svd.singular_values[0], 5.0f, 1e-3f);
  EXPECT_NEAR(svd.singular_values[1], 3.0f, 1e-3f);
}

TEST(SvdTest, BestLowRankApproximation) {
  // Reconstruction error must not exceed the energy in the dropped tail
  // (Eckart–Young, up to iteration tolerance).
  core::Rng rng(6);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 300; ++i) {
    triplets.push_back({rng.UniformInt(30), rng.UniformInt(30),
                        static_cast<float>(rng.Normal())});
  }
  CsrMatrix sparse = CsrMatrix::FromTriplets(30, 30, std::move(triplets));
  Matrix dense = sparse.ToDense();
  TruncatedSvd svd = ComputeTruncatedSvd(sparse, 10, 10, rng);
  const float err = SumSquares(Sub(dense, SvdReconstruct(svd)));
  const float total = SumSquares(dense);
  double kept = 0.0;
  for (float s : svd.singular_values) kept += double(s) * s;
  EXPECT_NEAR(err, total - static_cast<float>(kept), 0.05f * total);
  EXPECT_LT(err, total);
}

}  // namespace
}  // namespace darec::tensor
