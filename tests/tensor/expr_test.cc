// Expression-fusion contract tests (DESIGN.md §14): the DAREC_FUSION toggle
// parses/validates like DAREC_SIMD, and every recorded chain shape used by
// the model evaluates bitwise-identically fused vs replayed — across the
// compiled SIMD tiers and across thread counts — in both the forward value
// and every input gradient.
#include "tensor/expr.h"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/cpu_features.h"
#include "core/thread_pool.h"
#include "gtest/gtest.h"
#include "tensor/autograd.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace darec::tensor::expr {
namespace {

TEST(FusionModeTest, ParseAcceptsOnAndOff) {
  auto on = ParseFusionMode("on");
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(*on);
  auto off = ParseFusionMode("off");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(*off);
}

TEST(FusionModeTest, ParseRejectsGarbage) {
  for (const char* bad : {"", "ON", "Off", "true", "1", "on ", "enabled"}) {
    auto parsed = ParseFusionMode(bad);
    EXPECT_FALSE(parsed.ok()) << "'" << bad << "' should not parse";
    EXPECT_EQ(parsed.status().code(), core::StatusCode::kInvalidArgument);
  }
}

TEST(FusionModeTest, EnvOverrideHonored) {
  setenv("DAREC_FUSION", "off", 1);
  EXPECT_FALSE(FusionModeFromEnvOrDie());
  setenv("DAREC_FUSION", "on", 1);
  EXPECT_TRUE(FusionModeFromEnvOrDie());
  unsetenv("DAREC_FUSION");
  EXPECT_TRUE(FusionModeFromEnvOrDie()) << "unset must default to on";
}

TEST(FusionModeDeathTest, EnvOverrideRejectsGarbage) {
  setenv("DAREC_FUSION", "fast", 1);
  EXPECT_DEATH(FusionModeFromEnvOrDie(), "DAREC_FUSION");
  setenv("DAREC_FUSION", "On", 1);
  EXPECT_DEATH(FusionModeFromEnvOrDie(), "DAREC_FUSION");
  unsetenv("DAREC_FUSION");
}

TEST(FusionModeTest, SetFusionForTestFlipsTheMode) {
  SetFusionForTest(false);
  EXPECT_FALSE(FusionEnabled());
  SetFusionForTest(true);
  EXPECT_TRUE(FusionEnabled());
}

TEST(ExprDeathTest, HandlesGoStaleAfterEval) {
  Variable a = Variable::Constant(Matrix::Full(2, 3, 1.5f));
  Expr recorded = Sum(In(a));
  (void)Eval(recorded);
  EXPECT_DEATH(Eval(recorded), "stale");
}

// --- Fused-vs-eager parity sweep -------------------------------------------

/// Deterministic inputs with mixed signs/magnitudes; `zero_row` forces one
/// all-zero row to exercise the RowL2Normalize eps passthrough.
Matrix TestInput(int64_t rows, int64_t cols, float offset, bool zero_row = false) {
  Matrix m(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const float base = 0.31f + 0.47f * static_cast<float>(r) -
                         0.29f * static_cast<float>(c) + offset;
      m(r, c) = base * ((r + c) % 3 == 0 ? -17.0f : 0.013f);
    }
  }
  if (zero_row && rows > 1) {
    for (int64_t c = 0; c < cols; ++c) m(1, c) = 0.0f;
  }
  return m;
}

std::vector<uint32_t> BitsOf(const Matrix& m) {
  std::vector<uint32_t> bits(static_cast<size_t>(m.size()));
  std::memcpy(bits.data(), m.data(), bits.size() * sizeof(uint32_t));
  return bits;
}

struct ChainCase {
  const char* name;
  int num_inputs;
  bool wants_fusion;  // False for chains that must fall back to replay.
  std::function<Variable(const std::vector<Variable>&)> build;
};

/// Every chain shape the model records, plus a fallback chain with no fused
/// pattern. Builders record through expr:: and Eval, exactly like the call
/// sites in darec/losses.cc and the rerouted composites in tensor/ops.cc.
std::vector<ChainCase> AllChains() {
  return {
      {"sub_sumsq", 2, true,
       [](const std::vector<Variable>& in) {
         return Eval(ScalarMul(SumSquares(Sub(In(in[0]), In(in[1]))), 0.125f));
       }},
      {"mean_square_bias", 1, true,
       [](const std::vector<Variable>& in) {
         return Eval(Mean(Square(AddScalar(In(in[0]), -1.0f))));
       }},
      {"sum_square", 1, true,
       [](const std::vector<Variable>& in) {
         return Eval(Sum(Square(In(in[0]))));
       }},
      {"exp_affine_sum", 1, true,
       [](const std::vector<Variable>& in) {
         return Eval(Log(ScalarMul(
             Sum(Exp(ScalarMul(AddScalar(ScalarMul(In(in[0]), -2.0f), 2.0f),
                               -2.0f))),
             0.25f)));
       }},
      {"mul_sub_sum", 3, true,
       [](const std::vector<Variable>& in) {
         return Eval(ScalarMul(
             Sum(Mul(In(in[0]), Sub(In(in[1]), In(in[2])))), 0.5f));
       }},
      {"cosine_rows", 2, true,
       [](const std::vector<Variable>& in) {
         return Eval(Mean(Square(
             RowSum(Mul(RowL2Normalize(In(in[0])), RowL2Normalize(In(in[1])))))));
       }},
      {"row_dot", 2, true,
       [](const std::vector<Variable>& in) {
         return Eval(Mean(RowSum(Mul(In(in[0]), In(in[1])))));
       }},
      {"fallback_abs", 2, false,
       [](const std::vector<Variable>& in) {
         return Eval(Sum(Abs(Sub(In(in[0]), In(in[1])))));
       }},
  };
}

struct ChainResult {
  std::vector<uint32_t> value_bits;
  std::vector<std::vector<uint32_t>> grad_bits;
};

ChainResult RunChain(const ChainCase& chain, int64_t rows, int64_t cols,
                     bool fused) {
  SetFusionForTest(fused);
  std::vector<Variable> inputs;
  for (int i = 0; i < chain.num_inputs; ++i) {
    inputs.push_back(Variable::Parameter(
        TestInput(rows, cols, 0.1f * static_cast<float>(i + 1), i == 0)));
  }
  const int64_t fused_before = FusedOpsExecuted();
  Variable loss = chain.build(inputs);
  const int64_t fused_delta = FusedOpsExecuted() - fused_before;
  if (fused && chain.wants_fusion) {
    EXPECT_GT(fused_delta, 0) << chain.name << " should have fused";
  } else {
    EXPECT_EQ(fused_delta, 0) << chain.name << " should not have fused";
  }
  Backward(loss);
  ChainResult result;
  result.value_bits = BitsOf(loss.value());
  for (const Variable& in : inputs) result.grad_bits.push_back(BitsOf(in.grad()));
  SetFusionForTest(true);
  return result;
}

class FusionParityTest : public ::testing::Test {
 protected:
  static std::vector<core::SimdLevel> AvailableLevels() {
    std::vector<core::SimdLevel> levels{core::SimdLevel::kScalar};
    if (core::HardwareSimdLevel() >= core::SimdLevel::kAvx2)
      levels.push_back(core::SimdLevel::kAvx2);
    if (core::HardwareSimdLevel() >= core::SimdLevel::kAvx512)
      levels.push_back(core::SimdLevel::kAvx512);
    return levels;
  }

  void TearDown() override {
    core::SetSimdLevelForTest(core::HardwareSimdLevel());
    core::ThreadPool::SetGlobalThreads(core::ThreadPool::DefaultThreads());
    SetFusionForTest(true);
  }
};

TEST_F(FusionParityTest, FusedMatchesEagerBitwiseAcrossTiersAndThreads) {
  // Shapes: 1x1, primes, tile-exact, one-past-tile, tall-skinny.
  const int64_t shapes[][2] = {{1, 1}, {3, 5}, {7, 13}, {16, 16},
                               {17, 33}, {31, 8}, {64, 3}};
  for (const ChainCase& chain : AllChains()) {
    for (const auto& shape : shapes) {
      const int64_t rows = shape[0], cols = shape[1];
      // Baseline: replayed eager chain, scalar tier, single thread.
      core::SetSimdLevelForTest(core::SimdLevel::kScalar);
      core::ThreadPool::SetGlobalThreads(1);
      const ChainResult want = RunChain(chain, rows, cols, /*fused=*/false);
      for (core::SimdLevel level : AvailableLevels()) {
        core::SetSimdLevelForTest(level);
        for (int threads : {1, 8}) {
          core::ThreadPool::SetGlobalThreads(threads);
          for (bool fused : {false, true}) {
            const ChainResult got = RunChain(chain, rows, cols, fused);
            ASSERT_EQ(got.value_bits, want.value_bits)
                << chain.name << " value " << rows << "x" << cols << " "
                << core::SimdLevelName(level) << " threads=" << threads
                << " fused=" << fused;
            ASSERT_EQ(got.grad_bits.size(), want.grad_bits.size());
            for (size_t i = 0; i < want.grad_bits.size(); ++i) {
              ASSERT_EQ(got.grad_bits[i], want.grad_bits[i])
                  << chain.name << " grad[" << i << "] " << rows << "x" << cols
                  << " " << core::SimdLevelName(level) << " threads=" << threads
                  << " fused=" << fused;
            }
          }
        }
      }
    }
  }
}

TEST_F(FusionParityTest, ReroutedCompositesMatchRecordedChains) {
  // RowDot / CosineRowSimilarity / MseLoss now route through expr — their
  // values and grads must be bitwise-stable whether fusion is on or off.
  std::vector<uint32_t> want_value, want_ga, want_gb;
  for (bool fused : {false, true}) {
    SetFusionForTest(fused);
    Variable a = Variable::Parameter(TestInput(9, 7, 0.2f, true));
    Variable b = Variable::Parameter(TestInput(9, 7, -0.3f));
    Variable loss = tensor::Add(
        tensor::Add(tensor::Sum(tensor::RowDot(a, b)),
                    tensor::Sum(tensor::CosineRowSimilarity(a, b))),
        tensor::MseLoss(a, b));
    Backward(loss);
    if (!fused) {
      want_value = BitsOf(loss.value());
      want_ga = BitsOf(a.grad());
      want_gb = BitsOf(b.grad());
    } else {
      EXPECT_EQ(BitsOf(loss.value()), want_value);
      EXPECT_EQ(BitsOf(a.grad()), want_ga);
      EXPECT_EQ(BitsOf(b.grad()), want_gb);
    }
  }
  SetFusionForTest(true);
}

TEST(ExprTest, CompositeInsideRecordingDoesNotClobberIt) {
  // A composite op called while a recording is open must fall back to plain
  // eager composition instead of consuming the caller's recording.
  Variable a = Variable::Constant(Matrix::Full(4, 3, 0.5f));
  Variable b = Variable::Constant(Matrix::Full(4, 3, 0.25f));
  Expr open = Sub(In(a), In(b));  // Recording now active.
  EXPECT_TRUE(RecorderActive());
  Variable composite = tensor::MseLoss(a, b);  // Must not touch the recording.
  EXPECT_TRUE(RecorderActive());
  Variable recorded = Eval(SumSquares(open));
  EXPECT_FALSE(RecorderActive());
  const float n = static_cast<float>(a.value().size());
  EXPECT_EQ(composite.scalar(), recorded.scalar() * (1.0f / n));
}

}  // namespace
}  // namespace darec::tensor::expr
