#include "tensor/optim.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/autograd.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace darec::tensor {
namespace {

// Quadratic bowl: f(x) = sum((x - target)^2); optimum at x == target.
Variable BowlLoss(const Variable& x, const Matrix& target) {
  return SumSquares(Sub(x, Variable::Constant(target)));
}

TEST(OptimTest, SgdDescendsQuadratic) {
  Matrix target = Matrix::FromVector(1, 2, {1.0f, -2.0f});
  Variable x = Variable::Parameter(Matrix::FromVector(1, 2, {5.0f, 5.0f}));
  Sgd sgd({x}, /*learning_rate=*/0.1f);
  float prev = BowlLoss(x, target).scalar();
  for (int step = 0; step < 100; ++step) {
    sgd.ZeroGrad();
    Variable loss = BowlLoss(x, target);
    Backward(loss);
    sgd.Step();
  }
  float final_loss = BowlLoss(x, target).scalar();
  EXPECT_LT(final_loss, prev * 1e-4f);
  EXPECT_NEAR(x.value()(0, 0), 1.0f, 1e-2f);
  EXPECT_NEAR(x.value()(0, 1), -2.0f, 1e-2f);
}

TEST(OptimTest, SgdMomentumConvergesFasterOnIllConditioned) {
  // f(x) = 10*x0^2 + 0.1*x1^2 — classic momentum showcase.
  auto loss_fn = [](const Variable& x) {
    Variable scale = Variable::Constant(Matrix::FromVector(1, 2, {10.0f, 0.1f}));
    return Sum(Mul(scale, Square(x)));
  };
  auto run = [&](float momentum) {
    Variable x = Variable::Parameter(Matrix::FromVector(1, 2, {1.0f, 1.0f}));
    Sgd sgd({x}, 0.02f, momentum);
    for (int step = 0; step < 200; ++step) {
      sgd.ZeroGrad();
      Backward(loss_fn(x));
      sgd.Step();
    }
    return loss_fn(x).scalar();
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(OptimTest, AdamDescendsQuadratic) {
  Matrix target = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  Variable x = Variable::Parameter(Matrix(2, 2));
  Adam adam({x}, /*learning_rate=*/0.1f);
  for (int step = 0; step < 500; ++step) {
    adam.ZeroGrad();
    Backward(BowlLoss(x, target));
    adam.Step();
  }
  EXPECT_TRUE(AllClose(x.value(), target, 0.05f));
  EXPECT_EQ(adam.step_count(), 500);
}

TEST(OptimTest, AdamWeightDecayShrinksTowardZero) {
  // Zero gradient task: decay alone should shrink the weights.
  Variable x = Variable::Parameter(Matrix::Full(1, 2, 1.0f));
  Adam adam({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    // Constant loss w.r.t. x would give empty grads and skip the update, so
    // add a tiny coupling.
    Backward(ScalarMul(Sum(x), 1e-6f));
    adam.Step();
  }
  EXPECT_LT(std::fabs(x.value()(0, 0)), 0.5f);
}

TEST(OptimTest, SkipsParamsWithoutGradients) {
  Variable used = Variable::Parameter(Matrix::Full(1, 1, 1.0f));
  Variable unused = Variable::Parameter(Matrix::Full(1, 1, 1.0f));
  Adam adam({used, unused}, 0.1f);
  adam.ZeroGrad();
  Backward(SumSquares(used));
  adam.Step();
  EXPECT_NE(used.value()(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(unused.value()(0, 0), 1.0f);
}

TEST(OptimTest, ZeroGradClearsAll) {
  Variable x = Variable::Parameter(Matrix::Full(1, 1, 1.0f));
  Adam adam({x}, 0.1f);
  Backward(SumSquares(x));
  EXPECT_FALSE(x.grad().empty());
  adam.ZeroGrad();
  EXPECT_TRUE(x.grad().empty());
}

}  // namespace
}  // namespace darec::tensor
