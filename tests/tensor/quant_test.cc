// int8 quantized scoring: the InferLLM-checker idiom — a naive scalar
// reference device vs the optimized dispatched kernels, exact for the
// integer path, analytically bounded for the fp32-vs-dequant error.
#include "tensor/quant.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/cpu_features.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "gtest/gtest.h"
#include "tensor/simd/kernels.h"

namespace darec::tensor {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, core::Rng& rng) {
  Matrix m(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      // Mixed magnitudes so per-row scales differ meaningfully.
      m(r, c) = rng.Uniform(-1.0f, 1.0f) * (0.1f + 10.0f * rng.Uniform(0.0f, 1.0f));
    }
  }
  return m;
}

std::vector<core::SimdLevel> CompiledLevels() {
  std::vector<core::SimdLevel> levels = {core::SimdLevel::kScalar};
  if (core::HardwareSimdLevel() >= core::SimdLevel::kAvx2) {
    levels.push_back(core::SimdLevel::kAvx2);
  }
  if (core::HardwareSimdLevel() >= core::SimdLevel::kAvx512) {
    levels.push_back(core::SimdLevel::kAvx512);
  }
  return levels;
}

TEST(QuantizeRowsInt8Test, ReconstructionWithinHalfScalePerElement) {
  core::Rng rng(11);
  const Matrix m = RandomMatrix(7, 33, rng);
  const QuantizedBlock q = QuantizeRowsInt8(m, 0, 7);
  ASSERT_EQ(q.rows, 7);
  ASSERT_EQ(q.cols, 33);
  for (int64_t r = 0; r < 7; ++r) {
    const float scale = q.scales[static_cast<size_t>(r)];
    ASSERT_GT(scale, 0.0f);
    for (int64_t c = 0; c < 33; ++c) {
      const int8_t code = q.Row(r)[c];
      EXPECT_GE(code, -127);
      EXPECT_LE(code, 127);
      // |x - s*q| <= s/2 + a crumb of float roundoff in the scale itself.
      EXPECT_LE(std::fabs(m(r, c) - scale * static_cast<float>(code)),
                0.5f * scale * 1.001f + 1e-6f)
          << "row " << r << " col " << c;
    }
  }
}

TEST(QuantizeRowsInt8Test, RowBlockOffsetsAndZeroRows) {
  Matrix m(4, 3);
  m(1, 0) = 2.0f;
  m(1, 1) = -4.0f;  // max_abs row 1 = 4
  m(3, 2) = 1.0f;
  const QuantizedBlock q = QuantizeRowsInt8(m, 1, 3);  // rows 1..3
  ASSERT_EQ(q.rows, 3);
  // Row 1 of m -> row 0 of block: codes 2/4*127 = 63.5 -> 64 (to even), -127.
  EXPECT_FLOAT_EQ(q.scales[0], 4.0f / 127.0f);
  EXPECT_EQ(q.Row(0)[0], 64);
  EXPECT_EQ(q.Row(0)[1], -127);
  // Row 2 is all zero: scale 0, zero codes.
  EXPECT_FLOAT_EQ(q.scales[1], 0.0f);
  EXPECT_EQ(q.Row(1)[0], 0);
  EXPECT_EQ(q.Row(1)[2], 0);
  // Row 3: only element -> ±127 at its own scale.
  EXPECT_EQ(q.Row(2)[2], 127);
}

/// Every compiled tier must reproduce a naive scalar reference loop exactly
/// — integer accumulation is exact, so "bounded error" here means zero.
TEST(Int8KernelParityTest, ScoreRowMatchesNaiveReferenceOnEveryTier) {
  core::Rng rng(23);
  // (dim, num_items) incl. primes, one, vector-width straddlers.
  const int64_t shapes[][2] = {{1, 1},  {7, 13}, {16, 31}, {31, 64},
                               {64, 7}, {65, 97}, {128, 33}};
  for (const auto& shape : shapes) {
    const int64_t dim = shape[0], num_items = shape[1];
    std::vector<int8_t> user(static_cast<size_t>(dim));
    std::vector<int8_t> items(static_cast<size_t>(dim * num_items));
    for (auto& v : user) v = static_cast<int8_t>(rng.UniformInt(255) - 127);
    for (auto& v : items) v = static_cast<int8_t>(rng.UniformInt(255) - 127);
    std::vector<int32_t> expected(static_cast<size_t>(num_items));
    for (int64_t j = 0; j < num_items; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < dim; ++p) {
        acc += static_cast<int32_t>(user[static_cast<size_t>(p)]) *
               static_cast<int32_t>(items[static_cast<size_t>(j * dim + p)]);
      }
      expected[static_cast<size_t>(j)] = acc;
    }
    for (core::SimdLevel level : CompiledLevels()) {
      const simd::KernelTable& kt = simd::KernelsFor(level);
      std::vector<int32_t> got(static_cast<size_t>(num_items), -1);
      kt.i8_score_row(user.data(), items.data(), dim, num_items, got.data());
      for (int64_t j = 0; j < num_items; ++j) {
        ASSERT_EQ(got[static_cast<size_t>(j)], expected[static_cast<size_t>(j)])
            << kt.name << " dim=" << dim << " item " << j;
      }
    }
  }
}

TEST(Int8KernelParityTest, DequantRowBitwiseAcrossTiers) {
  core::Rng rng(31);
  for (const int64_t n : {1LL, 7LL, 31LL, 64LL, 100LL}) {
    std::vector<int32_t> acc(static_cast<size_t>(n));
    std::vector<float> scales(static_cast<size_t>(n));
    for (auto& v : acc) v = static_cast<int32_t>(rng.UniformInt(200001)) - 100000;
    for (auto& v : scales) v = rng.Uniform(1e-4f, 2.0f);
    const float user_scale = rng.Uniform(1e-4f, 2.0f);
    const simd::KernelTable& scalar =
        simd::KernelsFor(core::SimdLevel::kScalar);
    std::vector<float> expected(static_cast<size_t>(n));
    scalar.i8_dequant_row(expected.data(), acc.data(), scales.data(),
                          user_scale, n);
    for (core::SimdLevel level : CompiledLevels()) {
      const simd::KernelTable& kt = simd::KernelsFor(level);
      std::vector<float> got(static_cast<size_t>(n));
      kt.i8_dequant_row(got.data(), acc.data(), scales.data(), user_scale, n);
      for (int64_t j = 0; j < n; ++j) {
        ASSERT_EQ(got[static_cast<size_t>(j)], expected[static_cast<size_t>(j)])
            << kt.name << " n=" << n << " elem " << j;
      }
    }
  }
}

/// fp32 score vs dequantized int8 score, against the analytic bound from
/// tensor/quant.h: with per-element errors |e_u| ≤ s_u/2 and |e_i| ≤ s_i/2,
/// |x·y − s_u s_i (q_u·q_i)| ≤ (s_i/2)Σ|x_p| + (s_u/2)Σ|y_p| + 3d·s_u·s_i/4.
TEST(Int8ScoreBlockTest, ScoreErrorWithinAnalyticBound) {
  core::Rng rng(47);
  const int64_t num_rows = 24, num_items = 57, dim = 48;
  const Matrix users = RandomMatrix(num_rows, dim, rng);
  const Matrix items = RandomMatrix(num_items, dim, rng);
  const QuantizedBlock uq = QuantizeRowsInt8(users, 0, num_rows);
  const QuantizedBlock iq = QuantizeRowsInt8(items, 0, num_items);
  Matrix scores;
  Int8ScoreBlockInto(uq.values.data(), uq.scales.data(), num_rows, iq,
                     &scores);
  ASSERT_EQ(scores.rows(), num_rows);
  ASSERT_EQ(scores.cols(), num_items);
  for (int64_t r = 0; r < num_rows; ++r) {
    const float su = uq.scales[static_cast<size_t>(r)];
    double sum_abs_u = 0.0;
    for (int64_t p = 0; p < dim; ++p) sum_abs_u += std::fabs(users(r, p));
    for (int64_t j = 0; j < num_items; ++j) {
      const float si = iq.scales[static_cast<size_t>(j)];
      double fp = 0.0, sum_abs_i = 0.0;
      for (int64_t p = 0; p < dim; ++p) {
        fp += static_cast<double>(users(r, p)) * items(j, p);
        sum_abs_i += std::fabs(items(j, p));
      }
      const double bound = 0.5 * si * sum_abs_u + 0.5 * su * sum_abs_i +
                           0.75 * dim * su * si;
      EXPECT_LE(std::fabs(fp - scores(r, j)), bound * 1.01 + 1e-4)
          << "row " << r << " item " << j;
    }
  }
}

/// Thread-count and tier invariance of the full block wrapper: integer
/// accumulation + one fixed dequant chain ⇒ bitwise equal everywhere.
TEST(Int8ScoreBlockTest, BitwiseInvariantAcrossThreadsAndTiers) {
  core::Rng rng(59);
  const int64_t num_rows = 13, num_items = 41, dim = 37;
  const Matrix users = RandomMatrix(num_rows, dim, rng);
  const Matrix items = RandomMatrix(num_items, dim, rng);
  const QuantizedBlock uq = QuantizeRowsInt8(users, 0, num_rows);
  const QuantizedBlock iq = QuantizeRowsInt8(items, 0, num_items);
  Matrix reference;
  Int8ScoreBlockInto(uq.values.data(), uq.scales.data(), num_rows, iq,
                     &reference);
  const core::SimdLevel original = core::ActiveSimdLevel();
  for (core::SimdLevel level : CompiledLevels()) {
    core::SetSimdLevelForTest(level);
    for (int threads : {1, 8}) {
      core::ThreadPool::SetGlobalThreads(threads);
      Matrix got;
      Int8ScoreBlockInto(uq.values.data(), uq.scales.data(), num_rows, iq,
                         &got);
      for (int64_t r = 0; r < num_rows; ++r) {
        for (int64_t j = 0; j < num_items; ++j) {
          ASSERT_EQ(got(r, j), reference(r, j))
              << core::SimdLevelName(level) << " @" << threads << "T row "
              << r << " item " << j;
        }
      }
    }
  }
  core::SetSimdLevelForTest(original);
  core::ThreadPool::SetGlobalThreads(core::ThreadPool::DefaultThreads());
}

}  // namespace
}  // namespace darec::tensor
