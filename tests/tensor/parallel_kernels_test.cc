// Parity and determinism tests for the blocked/threaded kernels:
//  (a) the blocked MatMul matches a naive triple-loop reference within 1e-5
//      for all four transpose variants, including ragged and prime sizes;
//  (b) every parallelized kernel returns bit-identical results with a
//      1-thread and an 8-thread global pool (the determinism contract of
//      core::ThreadPool — fixed decomposition, chunk-order reductions).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "cluster/kmeans.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace darec::tensor {
namespace {

using cluster::KMeansOptions;
using cluster::KMeansResult;
using core::Rng;
using core::ThreadPool;

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  }
  return m;
}

// Naive reference: C(i,j) = Σ_p opA(i,p) · opB(p,j), double accumulation.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b, bool trans_a, bool trans_b) {
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t k = trans_a ? a.rows() : a.cols();
  const int64_t n = trans_b ? b.rows() : b.cols();
  Matrix c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a(p, i) : a(i, p);
        const float bv = trans_b ? b(j, p) : b(p, j);
        acc += double(av) * bv;
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0)
      << what << ": results differ between thread counts";
}

// Runs fn with a 1-thread global pool, then an 8-thread pool, and checks the
// two results are bit-identical. Restores the default pool afterwards.
template <typename Fn>
void ExpectThreadInvariant(Fn&& fn, const char* what) {
  ThreadPool::SetGlobalThreads(1);
  const Matrix serial = fn();
  ThreadPool::SetGlobalThreads(8);
  const Matrix threaded = fn();
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreads());
  ExpectBitIdentical(serial, threaded, what);
}

// --- (a) blocked MatMul vs naive reference ---------------------------------

using MatMulShape = std::tuple<int64_t, int64_t, int64_t>;  // m, k, n

class MatMulParityTest : public ::testing::TestWithParam<MatMulShape> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulParityTest,
    ::testing::Values(MatMulShape{1, 1, 1}, MatMulShape{1, 7, 1},
                      MatMulShape{1, 4, 33}, MatMulShape{33, 4, 1},
                      MatMulShape{2, 3, 2}, MatMulShape{17, 13, 29},
                      MatMulShape{31, 37, 41}, MatMulShape{64, 64, 64},
                      MatMulShape{129, 65, 33}, MatMulShape{128, 1, 128},
                      MatMulShape{101, 127, 67}));

TEST_P(MatMulParityTest, AllFourTransposeVariantsMatchNaive) {
  const auto [m, k, n] = GetParam();
  // Operands shaped so op(A) is m×k and op(B) is k×n for each variant.
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      const Matrix a = trans_a ? RandomMatrix(k, m, 11) : RandomMatrix(m, k, 11);
      const Matrix b = trans_b ? RandomMatrix(n, k, 22) : RandomMatrix(k, n, 22);
      const Matrix expected = NaiveMatMul(a, b, trans_a, trans_b);
      const Matrix actual = MatMul(a, b, trans_a, trans_b);
      ASSERT_TRUE(actual.SameShape(expected));
      for (int64_t i = 0; i < actual.size(); ++i) {
        ASSERT_NEAR(actual.data()[i], expected.data()[i], 1e-5f)
            << "variant trans_a=" << trans_a << " trans_b=" << trans_b
            << " flat index " << i;
      }
    }
  }
}

TEST(MatMulParityTest, EmptyDimensionsYieldZeros) {
  const Matrix a = RandomMatrix(4, 0, 1);
  const Matrix b = RandomMatrix(0, 5, 2);
  const Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 5);
  for (int64_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0f);
}

TEST(PairwiseParityTest, MatchesNaiveFormulation) {
  const Matrix a = RandomMatrix(67, 33, 5);
  const Matrix b = RandomMatrix(41, 33, 6);
  const Matrix d = PairwiseSquaredDistances(a, b);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (int64_t c = 0; c < a.cols(); ++c) {
        const double diff = double(a(i, c)) - b(j, c);
        acc += diff * diff;
      }
      ASSERT_NEAR(d(i, j), acc, 1e-3) << i << "," << j;
      ASSERT_GE(d(i, j), 0.0f);
    }
  }
}

TEST(PairwiseParityTest, IdenticalRowsHaveExactlyZeroDistance) {
  Matrix a = RandomMatrix(130, 48, 7);
  a.CopyRowFrom(a, 0, 129);  // duplicate a row across tile boundaries
  const Matrix d = PairwiseSquaredDistances(a, a);
  for (int64_t i = 0; i < a.rows(); ++i) EXPECT_EQ(d(i, i), 0.0f) << i;
  EXPECT_EQ(d(0, 129), 0.0f);
  EXPECT_EQ(d(129, 0), 0.0f);
}

// --- (b) 1-thread vs 8-thread bit-identical results ------------------------

TEST(ThreadInvarianceTest, MatMulAllVariants) {
  const Matrix a = RandomMatrix(257, 63, 1);
  const Matrix b = RandomMatrix(63, 129, 2);
  const Matrix at = RandomMatrix(63, 257, 3);
  const Matrix bt = RandomMatrix(129, 63, 4);
  ExpectThreadInvariant([&] { return MatMul(a, b); }, "matmul_nn");
  ExpectThreadInvariant([&] { return MatMul(at, b, true, false); }, "matmul_tn");
  ExpectThreadInvariant([&] { return MatMul(a, bt, false, true); }, "matmul_nt");
  ExpectThreadInvariant([&] { return MatMul(at, bt, true, true); }, "matmul_tt");
}

TEST(ThreadInvarianceTest, PairwiseAndRowKernels) {
  const Matrix p = RandomMatrix(389, 29, 5);
  ExpectThreadInvariant([&] { return PairwiseSquaredDistances(p, p); },
                        "pairwise_sqdist");
  ExpectThreadInvariant([&] { return RowNormalize(p); }, "row_normalize");
  ExpectThreadInvariant([&] { return RowNorms(p); }, "row_norms");
  ExpectThreadInvariant([&] { return Transpose(p); }, "transpose");
}

TEST(ThreadInvarianceTest, ElementwiseKernels) {
  const Matrix a = RandomMatrix(300, 200, 6);
  const Matrix b = RandomMatrix(300, 200, 7);
  ExpectThreadInvariant([&] { return Add(a, b); }, "add");
  ExpectThreadInvariant([&] { return Sub(a, b); }, "sub");
  ExpectThreadInvariant([&] { return Hadamard(a, b); }, "hadamard");
  ExpectThreadInvariant([&] { return Scale(a, 0.37f); }, "scale");
}

TEST(ThreadInvarianceTest, CsrMultiplyAndTransposeMultiply) {
  Rng rng(8);
  std::vector<Triplet> triplets;
  const int64_t rows = 3000, cols = 700, d = 40;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t e = 0; e < 12; ++e) {
      triplets.push_back(
          {r, rng.UniformInt(cols), static_cast<float>(rng.UniformDouble())});
    }
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
  const Matrix dense_right = RandomMatrix(cols, d, 9);
  const Matrix dense_left = RandomMatrix(rows, d, 10);
  ExpectThreadInvariant([&] { return sparse.Multiply(dense_right); },
                        "csr_multiply");
  ExpectThreadInvariant([&] { return sparse.TransposeMultiply(dense_left); },
                        "csr_transpose_multiply");
}

TEST(ThreadInvarianceTest, KMeansFromFixedCenters) {
  const Matrix points = RandomMatrix(2500, 24, 11);
  KMeansOptions options;
  options.num_clusters = 7;
  options.max_iterations = 12;
  Matrix init(7, 24);
  for (int64_t c = 0; c < 7; ++c) init.CopyRowFrom(points, 31 * c, c);

  ThreadPool::SetGlobalThreads(1);
  const KMeansResult serial = cluster::RunKMeansFrom(points, init, options);
  ThreadPool::SetGlobalThreads(8);
  const KMeansResult threaded = cluster::RunKMeansFrom(points, init, options);
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreads());

  EXPECT_EQ(serial.iterations, threaded.iterations);
  EXPECT_EQ(serial.assignments, threaded.assignments);
  EXPECT_EQ(serial.inertia, threaded.inertia);
  ExpectBitIdentical(serial.centers, threaded.centers, "kmeans_centers");
}

TEST(ThreadInvarianceTest, ExceptionInsideKernelSizedLoopPropagates) {
  // Sanity check that the free ParallelFor used by the kernels propagates
  // exceptions at kernel-scale ranges too.
  ThreadPool::SetGlobalThreads(8);
  EXPECT_THROW(
      core::ParallelFor(0, 1 << 18, 1 << 12,
                        [&](int64_t b, int64_t) {
                          if (b >= (1 << 17)) throw std::runtime_error("mid");
                        }),
      std::runtime_error);
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreads());
}

}  // namespace
}  // namespace darec::tensor
