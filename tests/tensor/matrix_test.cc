#include "tensor/matrix.h"

#include <cmath>

#include "gtest/gtest.h"

namespace darec::tensor {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  EXPECT_FLOAT_EQ(m(1, 2), 0.0f);
  m(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 5.0f);
}

TEST(MatrixTest, FullAndIdentity) {
  Matrix f = Matrix::Full(2, 2, 3.0f);
  EXPECT_FLOAT_EQ(f(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(f(1, 1), 3.0f);
  Matrix id = Matrix::Identity(3);
  EXPECT_FLOAT_EQ(id(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(id(0, 1), 0.0f);
}

TEST(MatrixTest, FromVectorRowMajor) {
  Matrix m = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
}

TEST(MatrixTest, MatMulPlain) {
  Matrix a = Matrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Matrix::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154].
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(MatrixTest, MatMulTransposeVariantsAgree) {
  Matrix a = Matrix::FromVector(2, 3, {1, -2, 3, 0.5, 5, -6});
  Matrix b = Matrix::FromVector(3, 4, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  Matrix at = Transpose(a);
  Matrix bt = Transpose(b);
  Matrix expected = MatMul(a, b);
  EXPECT_TRUE(AllClose(MatMul(at, b, true, false), expected));
  EXPECT_TRUE(AllClose(MatMul(a, bt, false, true), expected));
  EXPECT_TRUE(AllClose(MatMul(at, bt, true, true), expected));
}

TEST(MatrixTest, MatMulIdentityIsNoop) {
  Matrix a = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  EXPECT_TRUE(AllClose(MatMul(a, Matrix::Identity(2)), a));
  EXPECT_TRUE(AllClose(MatMul(Matrix::Identity(2), a), a));
}

TEST(MatrixTest, AddSubHadamardScale) {
  Matrix a = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  Matrix b = Matrix::FromVector(2, 2, {5, 6, 7, 8});
  EXPECT_TRUE(AllClose(Add(a, b), Matrix::FromVector(2, 2, {6, 8, 10, 12})));
  EXPECT_TRUE(AllClose(Sub(b, a), Matrix::FromVector(2, 2, {4, 4, 4, 4})));
  EXPECT_TRUE(AllClose(Hadamard(a, b), Matrix::FromVector(2, 2, {5, 12, 21, 32})));
  EXPECT_TRUE(AllClose(Scale(a, 2.0f), Matrix::FromVector(2, 2, {2, 4, 6, 8})));
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = Matrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = Transpose(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0f);
  EXPECT_TRUE(AllClose(Transpose(t), a));
}

TEST(MatrixTest, Reductions) {
  Matrix a = Matrix::FromVector(2, 2, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(SumAll(a), -2.0f);
  EXPECT_FLOAT_EQ(SumSquares(a), 30.0f);
  EXPECT_FLOAT_EQ(MaxAbs(a), 4.0f);
}

TEST(MatrixTest, RowNormsAndNormalize) {
  Matrix a = Matrix::FromVector(2, 2, {3, 4, 0, 0});
  Matrix norms = RowNorms(a);
  EXPECT_FLOAT_EQ(norms(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(norms(1, 0), 0.0f);
  Matrix n = RowNormalize(a);
  EXPECT_FLOAT_EQ(n(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(n(0, 1), 0.8f);
  // Zero row passes through untouched.
  EXPECT_FLOAT_EQ(n(1, 0), 0.0f);
}

TEST(MatrixTest, PairwiseSquaredDistances) {
  Matrix a = Matrix::FromVector(2, 2, {0, 0, 1, 1});
  Matrix b = Matrix::FromVector(2, 2, {0, 0, 3, 4});
  Matrix d = PairwiseSquaredDistances(a, b);
  EXPECT_FLOAT_EQ(d(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d(0, 1), 25.0f);
  EXPECT_FLOAT_EQ(d(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(d(1, 1), 13.0f);
}

TEST(MatrixTest, AddInPlaceWithScale) {
  Matrix a = Matrix::FromVector(1, 2, {1, 2});
  Matrix b = Matrix::FromVector(1, 2, {10, 20});
  a.AddInPlace(b, 0.5f);
  EXPECT_TRUE(AllClose(a, Matrix::FromVector(1, 2, {6, 12})));
}

TEST(MatrixTest, CopyRowFrom) {
  Matrix src = Matrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix dst(2, 3);
  dst.CopyRowFrom(src, 1, 0);
  EXPECT_FLOAT_EQ(dst(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(dst(0, 2), 6.0f);
}

TEST(MatrixTest, AllCloseToleratesSmallDiffs) {
  Matrix a = Matrix::FromVector(1, 2, {1.0f, 2.0f});
  Matrix b = Matrix::FromVector(1, 2, {1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(AllClose(a, b));
  Matrix c = Matrix::FromVector(1, 2, {1.1f, 2.0f});
  EXPECT_FALSE(AllClose(a, c));
  Matrix d(2, 1);
  EXPECT_FALSE(AllClose(a, d));
}

TEST(MatrixTest, DebugStringTruncates) {
  Matrix m(10, 10);
  std::string s = m.DebugString(2, 2);
  EXPECT_NE(s.find("10x10"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace darec::tensor
