// Property-style sweeps over shapes/seeds for the tensor layer: algebraic
// identities of the raw kernels and structural contracts of the autograd
// ops that the model code relies on.
#include <cmath>
#include <tuple>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace darec::tensor {
namespace {

using ShapeParam = std::tuple<int64_t, int64_t>;

class MatrixAlgebraTest : public ::testing::TestWithParam<ShapeParam> {
 protected:
  Matrix Random(int64_t rows, int64_t cols, uint64_t seed) {
    core::Rng rng(seed);
    return RandomNormal(rows, cols, 1.0f, rng);
  }
};

INSTANTIATE_TEST_SUITE_P(Shapes, MatrixAlgebraTest,
                         ::testing::Values(ShapeParam{1, 1}, ShapeParam{1, 7},
                                           ShapeParam{5, 1}, ShapeParam{3, 4},
                                           ShapeParam{8, 8}, ShapeParam{17, 3}));

TEST_P(MatrixAlgebraTest, TransposeIsInvolution) {
  auto [rows, cols] = GetParam();
  Matrix a = Random(rows, cols, 1);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
}

TEST_P(MatrixAlgebraTest, AddIsCommutative) {
  auto [rows, cols] = GetParam();
  Matrix a = Random(rows, cols, 2);
  Matrix b = Random(rows, cols, 3);
  EXPECT_TRUE(AllClose(Add(a, b), Add(b, a)));
}

TEST_P(MatrixAlgebraTest, MatMulDistributesOverAdd) {
  auto [rows, cols] = GetParam();
  Matrix a = Random(rows, cols, 4);
  Matrix b = Random(cols, 5, 5);
  Matrix c = Random(cols, 5, 6);
  Matrix lhs = MatMul(a, Add(b, c));
  Matrix rhs = Add(MatMul(a, b), MatMul(a, c));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-3f));
}

TEST_P(MatrixAlgebraTest, TransposeOfProduct) {
  auto [rows, cols] = GetParam();
  Matrix a = Random(rows, cols, 7);
  Matrix b = Random(cols, 6, 8);
  EXPECT_TRUE(AllClose(Transpose(MatMul(a, b)),
                       MatMul(Transpose(b), Transpose(a)), 1e-3f));
}

TEST_P(MatrixAlgebraTest, RowNormalizeIsIdempotent) {
  auto [rows, cols] = GetParam();
  Matrix a = Random(rows, cols, 9);
  Matrix once = RowNormalize(a);
  Matrix twice = RowNormalize(once);
  EXPECT_TRUE(AllClose(once, twice, 1e-4f));
  Matrix norms = RowNorms(once);
  for (int64_t r = 0; r < rows; ++r) EXPECT_NEAR(norms(r, 0), 1.0f, 1e-4f);
}

TEST_P(MatrixAlgebraTest, PairwiseDistancesDiagonalZeroSymmetric) {
  auto [rows, cols] = GetParam();
  Matrix a = Random(rows, cols, 10);
  Matrix d = PairwiseSquaredDistances(a, a);
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(d(i, i), 0.0f, 1e-4f);
    for (int64_t j = 0; j < rows; ++j) {
      EXPECT_NEAR(d(i, j), d(j, i), 1e-3f);
      EXPECT_GE(d(i, j), -1e-5f);
    }
  }
}

TEST_P(MatrixAlgebraTest, SumSquaresMatchesHadamardSum) {
  auto [rows, cols] = GetParam();
  Matrix a = Random(rows, cols, 11);
  EXPECT_NEAR(SumSquares(a), SumAll(Hadamard(a, a)), 1e-3f * a.size());
}

class OpsContractTest : public ::testing::TestWithParam<int64_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, OpsContractTest, ::testing::Values(2, 3, 8, 16));

TEST_P(OpsContractTest, SoftmaxRowsSumToOne) {
  core::Rng rng(GetParam());
  Variable x = Variable::Constant(RandomNormal(GetParam(), 6, 2.0f, rng));
  Variable y = SoftmaxRows(x);
  for (int64_t r = 0; r < y.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < y.cols(); ++c) {
      sum += y.value()(r, c);
      EXPECT_GE(y.value()(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_P(OpsContractTest, RowLogSumExpUpperBoundsMax) {
  core::Rng rng(100 + GetParam());
  Variable x = Variable::Constant(RandomNormal(GetParam(), 5, 3.0f, rng));
  Variable lse = RowLogSumExp(x);
  for (int64_t r = 0; r < x.rows(); ++r) {
    float max_v = x.value()(r, 0);
    for (int64_t c = 1; c < x.cols(); ++c) max_v = std::max(max_v, x.value()(r, c));
    EXPECT_GE(lse.value()(r, 0), max_v - 1e-5f);
    EXPECT_LE(lse.value()(r, 0),
              max_v + std::log(static_cast<float>(x.cols())) + 1e-5f);
  }
}

TEST_P(OpsContractTest, InfoNceLowerBoundIsZero) {
  // InfoNCE >= 0 is false in general, but it is bounded below by
  // -log(B)/... practical contract: aligned inputs give the minimum over
  // random perturbations of one side.
  core::Rng rng(200 + GetParam());
  Matrix base = RandomNormal(GetParam(), 8, 1.0f, rng);
  Variable a = Variable::Constant(base);
  float aligned = InfoNceLoss(a, Variable::Constant(base), 0.2f).scalar();
  Matrix noisy = Add(base, RandomNormal(GetParam(), 8, 1.0f, rng));
  float perturbed = InfoNceLoss(a, Variable::Constant(noisy), 0.2f).scalar();
  EXPECT_LE(aligned, perturbed + 1e-4f);
}

TEST_P(OpsContractTest, GatherThenConcatRoundTrip) {
  core::Rng rng(300 + GetParam());
  const int64_t n = GetParam() + 2;
  Variable x = Variable::Constant(RandomNormal(n, 4, 1.0f, rng));
  Variable top = SliceRows(x, 0, 2);
  Variable rest = SliceRows(x, 2, n - 2);
  Variable rebuilt = ConcatRows(top, rest);
  EXPECT_TRUE(AllClose(rebuilt.value(), x.value()));

  std::vector<int64_t> all(n);
  for (int64_t i = 0; i < n; ++i) all[i] = i;
  EXPECT_TRUE(AllClose(GatherRows(x, all).value(), x.value()));
}

TEST_P(OpsContractTest, MseLossZeroOnIdenticalInputs) {
  core::Rng rng(400 + GetParam());
  Matrix m = RandomNormal(GetParam(), 3, 1.0f, rng);
  EXPECT_NEAR(MseLoss(Variable::Constant(m), Variable::Constant(m)).scalar(), 0.0f,
              1e-7f);
}

TEST_P(OpsContractTest, BprLossMonotoneInMargin) {
  const int64_t n = GetParam();
  Variable neg = Variable::Constant(Matrix(n, 1));
  float previous = 1e9f;
  for (float margin : {-2.0f, -0.5f, 0.0f, 0.5f, 2.0f}) {
    Variable pos = Variable::Constant(Matrix::Full(n, 1, margin));
    float loss = BprLoss(pos, neg).scalar();
    EXPECT_LT(loss, previous);
    previous = loss;
  }
}

}  // namespace
}  // namespace darec::tensor
