#include "tensor/mlp.h"

#include "core/rng.h"
#include "gtest/gtest.h"
#include "tensor/optim.h"
#include "test_util.h"

namespace darec::tensor {
namespace {

TEST(MlpTest, ShapesAndParamCount) {
  core::Rng rng(1);
  Mlp mlp({8, 16, 4}, rng);
  EXPECT_EQ(mlp.input_dim(), 8);
  EXPECT_EQ(mlp.output_dim(), 4);
  // Two layers -> 2 weights + 2 biases.
  EXPECT_EQ(mlp.Params().size(), 4u);

  Variable x = Variable::Constant(Matrix::Full(5, 8, 0.5f));
  Variable y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 4);
}

TEST(MlpTest, SingleLayerIsAffine) {
  core::Rng rng(2);
  Mlp mlp({3, 2}, rng);
  // f(x1 + x2) + f(0) == f(x1) + f(x2) for affine maps.
  Matrix x1 = Matrix::FromVector(1, 3, {1, 2, 3});
  Matrix x2 = Matrix::FromVector(1, 3, {-2, 0.5, 1});
  Matrix zero(1, 3);
  Matrix lhs = Add(mlp.Forward(Variable::Constant(Add(x1, x2))).value(),
                   mlp.Forward(Variable::Constant(zero)).value());
  Matrix rhs = Add(mlp.Forward(Variable::Constant(x1)).value(),
                   mlp.Forward(Variable::Constant(x2)).value());
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-4f));
}

TEST(MlpTest, GradientsFlowToAllParams) {
  core::Rng rng(3);
  Mlp mlp({4, 6, 2}, rng);
  Variable x = Variable::Constant(Matrix::Full(3, 4, 0.7f));
  Backward(SumSquares(mlp.Forward(x)));
  for (const Variable& p : mlp.Params()) {
    EXPECT_FALSE(p.grad().empty());
  }
}

TEST(MlpTest, GradientCheck) {
  core::Rng rng(4);
  Mlp mlp({3, 5, 2}, rng, Activation::kTanh);
  Matrix input = Matrix::FromVector(2, 3, {0.3f, -0.2f, 0.8f, 0.1f, 0.6f, -0.5f});
  darec::testing::ExpectGradientsMatch(
      [&](const std::vector<Variable>&) {
        return SumSquares(mlp.Forward(Variable::Constant(input)));
      },
      mlp.Params());
}

TEST(MlpTest, LearnsXor) {
  core::Rng rng(5);
  Mlp mlp({2, 8, 1}, rng, Activation::kTanh);
  Matrix inputs = Matrix::FromVector(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  Matrix targets = Matrix::FromVector(4, 1, {0, 1, 1, 0});
  Adam adam(mlp.Params(), 0.05f);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 500; ++step) {
    adam.ZeroGrad();
    Variable pred = Sigmoid(mlp.Forward(Variable::Constant(inputs)));
    Variable loss = MseLoss(pred, Variable::Constant(targets));
    if (step == 0) first_loss = loss.scalar();
    last_loss = loss.scalar();
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.1f);
  EXPECT_LT(last_loss, 0.03f);
}

TEST(MlpTest, FinalActivationApplied) {
  core::Rng rng(6);
  Mlp sigmoid_out({2, 2}, rng, Activation::kSigmoid, /*final_activation=*/true);
  Variable x = Variable::Constant(Matrix::Full(4, 2, 10.0f));
  Variable y = sigmoid_out.Forward(x);
  for (int64_t r = 0; r < y.rows(); ++r) {
    for (int64_t c = 0; c < y.cols(); ++c) {
      EXPECT_GE(y.value()(r, c), 0.0f);
      EXPECT_LE(y.value()(r, c), 1.0f);
    }
  }
}

}  // namespace
}  // namespace darec::tensor
