#include "cf/backbone.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "cf/autocf.h"
#include "cf/dccf.h"
#include "cf/lightgcl.h"
#include "cf/ncl.h"
#include "cf/registry.h"
#include "core/rng.h"
#include "data/presets.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace darec::cf {
namespace {

struct Fixture {
  Fixture() {
    auto ds = data::LoadPresetDataset("tiny");
    DARE_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(ds).value());
    graph = std::make_unique<graph::BipartiteGraph>(*dataset);
  }
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<graph::BipartiteGraph> graph;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

BackboneOptions SmallOptions() {
  BackboneOptions options;
  options.embedding_dim = 8;
  options.num_layers = 2;
  options.ssl_batch = 32;
  return options;
}

/// Property sweep: every registered backbone satisfies the GraphBackbone
/// contract (shapes, gradients, determinism of inference).
class BackboneContractTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllBackbones, BackboneContractTest,
                         ::testing::ValuesIn(BackboneNames()),
                         [](const auto& info) { return info.param; });

TEST_P(BackboneContractTest, CreatesWithRegistryName) {
  Fixture& f = SharedFixture();
  auto backbone = CreateBackbone(GetParam(), f.graph.get(), SmallOptions());
  ASSERT_TRUE(backbone.ok());
  EXPECT_EQ((*backbone)->name(), GetParam());
}

TEST_P(BackboneContractTest, ForwardShape) {
  Fixture& f = SharedFixture();
  auto backbone = CreateBackbone(GetParam(), f.graph.get(), SmallOptions());
  ASSERT_TRUE(backbone.ok());
  core::Rng rng(1);
  tensor::Variable nodes = (*backbone)->Forward(true, rng);
  EXPECT_EQ(nodes.rows(), f.graph->num_nodes());
  EXPECT_EQ(nodes.cols(), 8);
}

TEST_P(BackboneContractTest, GradientsReachEmbeddings) {
  Fixture& f = SharedFixture();
  auto backbone = CreateBackbone(GetParam(), f.graph.get(), SmallOptions());
  ASSERT_TRUE(backbone.ok());
  core::Rng rng(2);
  tensor::Variable nodes = (*backbone)->Forward(true, rng);
  tensor::Variable loss = tensor::SumSquares(nodes);
  tensor::Variable ssl = (*backbone)->SslLoss(nodes, rng);
  if (!ssl.IsNull()) loss = tensor::Add(loss, ssl);
  Backward(loss);
  for (tensor::Variable& p : (*backbone)->Params()) {
    EXPECT_FALSE(p.grad().empty()) << "parameter missing gradient";
  }
}

TEST_P(BackboneContractTest, InferenceIsDeterministic) {
  Fixture& f = SharedFixture();
  auto backbone = CreateBackbone(GetParam(), f.graph.get(), SmallOptions());
  ASSERT_TRUE(backbone.ok());
  tensor::Matrix a = (*backbone)->InferenceEmbeddings();
  tensor::Matrix b = (*backbone)->InferenceEmbeddings();
  EXPECT_TRUE(tensor::AllClose(a, b));
}

TEST_P(BackboneContractTest, SslLossIsFiniteWhenPresent) {
  Fixture& f = SharedFixture();
  auto backbone = CreateBackbone(GetParam(), f.graph.get(), SmallOptions());
  ASSERT_TRUE(backbone.ok());
  core::Rng rng(3);
  tensor::Variable nodes = (*backbone)->Forward(true, rng);
  tensor::Variable ssl = (*backbone)->SslLoss(nodes, rng);
  if (!ssl.IsNull()) {
    EXPECT_TRUE(std::isfinite(ssl.scalar()));
    EXPECT_GE(ssl.scalar(), 0.0f);
  }
}

TEST(BackboneRegistryTest, UnknownNameFails) {
  Fixture& f = SharedFixture();
  EXPECT_FALSE(CreateBackbone("svd++", f.graph.get(), SmallOptions()).ok());
}

TEST(BackboneRegistryTest, NamesLeadWithPaperOrder) {
  std::vector<std::string> names = BackboneNames();
  ASSERT_GE(names.size(), 6u);
  // The paper's Table III backbones come first, in the paper's order.
  const std::vector<std::string> paper{"gccf", "lightgcn", "sgl",
                                       "simgcl", "dccf", "autocf"};
  for (size_t i = 0; i < paper.size(); ++i) EXPECT_EQ(names[i], paper[i]);
  // The extension backbones are present too.
  for (const std::string extra : {"mf", "ngcf", "ncl", "lightgcl"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), extra), names.end()) << extra;
  }
}

TEST(LightGcnTest, PropagationSmoothsNeighbors) {
  // After propagation, connected nodes move toward each other relative to
  // their initial embeddings (graph smoothing).
  Fixture& f = SharedFixture();
  auto backbone = CreateBackbone("lightgcn", f.graph.get(), SmallOptions());
  ASSERT_TRUE(backbone.ok());
  core::Rng rng(4);
  tensor::Matrix e0 = (*backbone)->initial_embeddings().value();
  tensor::Matrix out = (*backbone)->Forward(false, rng).value();

  const data::Interaction& edge = f.graph->edges()[0];
  const int64_t u = f.graph->UserNode(edge.user);
  const int64_t i = f.graph->ItemNode(edge.item);
  auto row_dist = [](const tensor::Matrix& m, int64_t a, int64_t b) {
    double acc = 0.0;
    for (int64_t c = 0; c < m.cols(); ++c) {
      const double diff = double(m(a, c)) - m(b, c);
      acc += diff * diff;
    }
    return acc;
  };
  EXPECT_LT(row_dist(out, u, i), row_dist(e0, u, i));
}

TEST(AutoCfTest, TrainingForwardMasksEdges) {
  Fixture& f = SharedFixture();
  BackboneOptions options = SmallOptions();
  options.mask_ratio = 0.3f;
  AutoCf autocf(f.graph.get(), options);
  core::Rng rng(5);
  autocf.Forward(true, rng);
  const int64_t expected =
      static_cast<int64_t>(0.3 * static_cast<double>(f.graph->num_edges()));
  EXPECT_EQ(static_cast<int64_t>(autocf.masked_edges().size()), expected);
  // Inference clears the mask.
  autocf.Forward(false, rng);
  EXPECT_TRUE(autocf.masked_edges().empty());
}

TEST(AutoCfTest, SslLossNullWithoutMask) {
  Fixture& f = SharedFixture();
  AutoCf autocf(f.graph.get(), SmallOptions());
  core::Rng rng(6);
  tensor::Variable nodes = autocf.Forward(false, rng);
  EXPECT_TRUE(autocf.SslLoss(nodes, rng).IsNull());
}

TEST(MfTest, ForwardIsRawEmbeddingTable) {
  Fixture& f = SharedFixture();
  auto backbone = CreateBackbone("mf", f.graph.get(), SmallOptions());
  ASSERT_TRUE(backbone.ok());
  core::Rng rng(7);
  tensor::Variable nodes = (*backbone)->Forward(true, rng);
  EXPECT_TRUE(tensor::AllClose(nodes.value(),
                               (*backbone)->initial_embeddings().value()));
}

TEST(NgcfTest, HasPerLayerTransformWeights) {
  Fixture& f = SharedFixture();
  BackboneOptions options = SmallOptions();
  options.num_layers = 3;
  auto backbone = CreateBackbone("ngcf", f.graph.get(), options);
  ASSERT_TRUE(backbone.ok());
  // Embedding table + (W1, W2) per layer.
  EXPECT_EQ((*backbone)->Params().size(), 1u + 2u * 3u);
}

TEST(NgcfTest, NonlinearityChangesPropagation) {
  // NGCF output must differ from LightGCN's on the same seed (feature
  // transforms + bi-interaction are real).
  Fixture& f = SharedFixture();
  auto ngcf = CreateBackbone("ngcf", f.graph.get(), SmallOptions());
  auto lightgcn = CreateBackbone("lightgcn", f.graph.get(), SmallOptions());
  ASSERT_TRUE(ngcf.ok());
  ASSERT_TRUE(lightgcn.ok());
  core::Rng rng(8);
  EXPECT_FALSE(tensor::AllClose((*ngcf)->Forward(false, rng).value(),
                                (*lightgcn)->Forward(false, rng).value()));
}

TEST(LightGclTest, SvdViewDiffersFromMainView) {
  Fixture& f = SharedFixture();
  LightGcl lightgcl(f.graph.get(), SmallOptions(), /*svd_rank=*/3);
  core::Rng rng(9);
  tensor::Variable nodes = lightgcl.Forward(true, rng);
  tensor::Variable ssl = lightgcl.SslLoss(nodes, rng);
  ASSERT_FALSE(ssl.IsNull());
  // A rank-3 summary cannot equal the full graph: the contrastive loss is
  // strictly positive.
  EXPECT_GT(ssl.scalar(), 0.0f);
}

TEST(NclTest, SslCombinesStructureAndPrototypes) {
  Fixture& f = SharedFixture();
  BackboneOptions options = SmallOptions();
  options.num_intents = 4;
  Ncl ncl(f.graph.get(), options);
  core::Rng rng(10);
  tensor::Variable nodes = ncl.Forward(true, rng);
  tensor::Variable ssl = ncl.SslLoss(nodes, rng);
  ASSERT_FALSE(ssl.IsNull());
  EXPECT_TRUE(std::isfinite(ssl.scalar()));
  // Both components are non-negative, so the sum is too.
  EXPECT_GE(ssl.scalar(), 0.0f);
}

TEST(DccfTest, HasIntentParameters) {
  Fixture& f = SharedFixture();
  BackboneOptions options = SmallOptions();
  options.num_intents = 5;
  Dccf dccf(f.graph.get(), options);
  EXPECT_EQ(dccf.Params().size(), 2u);
  EXPECT_EQ(dccf.intents().rows(), 5);
  EXPECT_EQ(dccf.intents().cols(), options.embedding_dim);
}

}  // namespace
}  // namespace darec::cf
