file(REMOVE_RECURSE
  "CMakeFiles/darec_llm.dir/encoder.cc.o"
  "CMakeFiles/darec_llm.dir/encoder.cc.o.d"
  "CMakeFiles/darec_llm.dir/text_profile.cc.o"
  "CMakeFiles/darec_llm.dir/text_profile.cc.o.d"
  "libdarec_llm.a"
  "libdarec_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
