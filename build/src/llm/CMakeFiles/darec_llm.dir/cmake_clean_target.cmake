file(REMOVE_RECURSE
  "libdarec_llm.a"
)
