# Empty dependencies file for darec_llm.
# This may be replaced when dependencies are built.
