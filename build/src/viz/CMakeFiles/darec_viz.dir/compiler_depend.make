# Empty compiler generated dependencies file for darec_viz.
# This may be replaced when dependencies are built.
