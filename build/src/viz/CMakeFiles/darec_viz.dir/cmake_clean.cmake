file(REMOVE_RECURSE
  "CMakeFiles/darec_viz.dir/tsne.cc.o"
  "CMakeFiles/darec_viz.dir/tsne.cc.o.d"
  "libdarec_viz.a"
  "libdarec_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
