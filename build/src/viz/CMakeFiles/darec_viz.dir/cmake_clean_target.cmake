file(REMOVE_RECURSE
  "libdarec_viz.a"
)
