# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("tensor")
subdirs("data")
subdirs("graph")
subdirs("llm")
subdirs("cluster")
subdirs("cf")
subdirs("align")
subdirs("darec")
subdirs("viz")
subdirs("eval")
subdirs("serve")
subdirs("theory")
subdirs("pipeline")
