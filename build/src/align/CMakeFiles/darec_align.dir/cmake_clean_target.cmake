file(REMOVE_RECURSE
  "libdarec_align.a"
)
