# Empty dependencies file for darec_align.
# This may be replaced when dependencies are built.
