file(REMOVE_RECURSE
  "CMakeFiles/darec_align.dir/controlrec.cc.o"
  "CMakeFiles/darec_align.dir/controlrec.cc.o.d"
  "CMakeFiles/darec_align.dir/ctrl.cc.o"
  "CMakeFiles/darec_align.dir/ctrl.cc.o.d"
  "CMakeFiles/darec_align.dir/kar.cc.o"
  "CMakeFiles/darec_align.dir/kar.cc.o.d"
  "CMakeFiles/darec_align.dir/rlmrec.cc.o"
  "CMakeFiles/darec_align.dir/rlmrec.cc.o.d"
  "libdarec_align.a"
  "libdarec_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
