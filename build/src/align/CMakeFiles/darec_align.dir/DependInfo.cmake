
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/controlrec.cc" "src/align/CMakeFiles/darec_align.dir/controlrec.cc.o" "gcc" "src/align/CMakeFiles/darec_align.dir/controlrec.cc.o.d"
  "/root/repo/src/align/ctrl.cc" "src/align/CMakeFiles/darec_align.dir/ctrl.cc.o" "gcc" "src/align/CMakeFiles/darec_align.dir/ctrl.cc.o.d"
  "/root/repo/src/align/kar.cc" "src/align/CMakeFiles/darec_align.dir/kar.cc.o" "gcc" "src/align/CMakeFiles/darec_align.dir/kar.cc.o.d"
  "/root/repo/src/align/rlmrec.cc" "src/align/CMakeFiles/darec_align.dir/rlmrec.cc.o" "gcc" "src/align/CMakeFiles/darec_align.dir/rlmrec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/darec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/darec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
