# Empty compiler generated dependencies file for darec_core.
# This may be replaced when dependencies are built.
