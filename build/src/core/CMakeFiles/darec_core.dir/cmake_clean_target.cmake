file(REMOVE_RECURSE
  "libdarec_core.a"
)
