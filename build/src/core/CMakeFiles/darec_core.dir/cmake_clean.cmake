file(REMOVE_RECURSE
  "CMakeFiles/darec_core.dir/config.cc.o"
  "CMakeFiles/darec_core.dir/config.cc.o.d"
  "CMakeFiles/darec_core.dir/logging.cc.o"
  "CMakeFiles/darec_core.dir/logging.cc.o.d"
  "CMakeFiles/darec_core.dir/rng.cc.o"
  "CMakeFiles/darec_core.dir/rng.cc.o.d"
  "CMakeFiles/darec_core.dir/status.cc.o"
  "CMakeFiles/darec_core.dir/status.cc.o.d"
  "libdarec_core.a"
  "libdarec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
