# Empty compiler generated dependencies file for darec_graph.
# This may be replaced when dependencies are built.
