file(REMOVE_RECURSE
  "libdarec_graph.a"
)
