file(REMOVE_RECURSE
  "CMakeFiles/darec_graph.dir/bipartite.cc.o"
  "CMakeFiles/darec_graph.dir/bipartite.cc.o.d"
  "libdarec_graph.a"
  "libdarec_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
