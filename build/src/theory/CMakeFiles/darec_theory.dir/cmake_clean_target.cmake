file(REMOVE_RECURSE
  "libdarec_theory.a"
)
