file(REMOVE_RECURSE
  "CMakeFiles/darec_theory.dir/info.cc.o"
  "CMakeFiles/darec_theory.dir/info.cc.o.d"
  "CMakeFiles/darec_theory.dir/theorem1.cc.o"
  "CMakeFiles/darec_theory.dir/theorem1.cc.o.d"
  "CMakeFiles/darec_theory.dir/theorem2.cc.o"
  "CMakeFiles/darec_theory.dir/theorem2.cc.o.d"
  "libdarec_theory.a"
  "libdarec_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
