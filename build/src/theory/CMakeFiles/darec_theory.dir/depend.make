# Empty dependencies file for darec_theory.
# This may be replaced when dependencies are built.
