file(REMOVE_RECURSE
  "CMakeFiles/darec_tensor.dir/autograd.cc.o"
  "CMakeFiles/darec_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/darec_tensor.dir/csr.cc.o"
  "CMakeFiles/darec_tensor.dir/csr.cc.o.d"
  "CMakeFiles/darec_tensor.dir/init.cc.o"
  "CMakeFiles/darec_tensor.dir/init.cc.o.d"
  "CMakeFiles/darec_tensor.dir/io.cc.o"
  "CMakeFiles/darec_tensor.dir/io.cc.o.d"
  "CMakeFiles/darec_tensor.dir/matrix.cc.o"
  "CMakeFiles/darec_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/darec_tensor.dir/mlp.cc.o"
  "CMakeFiles/darec_tensor.dir/mlp.cc.o.d"
  "CMakeFiles/darec_tensor.dir/ops.cc.o"
  "CMakeFiles/darec_tensor.dir/ops.cc.o.d"
  "CMakeFiles/darec_tensor.dir/optim.cc.o"
  "CMakeFiles/darec_tensor.dir/optim.cc.o.d"
  "CMakeFiles/darec_tensor.dir/svd.cc.o"
  "CMakeFiles/darec_tensor.dir/svd.cc.o.d"
  "libdarec_tensor.a"
  "libdarec_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
