
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/autograd.cc" "src/tensor/CMakeFiles/darec_tensor.dir/autograd.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/autograd.cc.o.d"
  "/root/repo/src/tensor/csr.cc" "src/tensor/CMakeFiles/darec_tensor.dir/csr.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/csr.cc.o.d"
  "/root/repo/src/tensor/init.cc" "src/tensor/CMakeFiles/darec_tensor.dir/init.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/init.cc.o.d"
  "/root/repo/src/tensor/io.cc" "src/tensor/CMakeFiles/darec_tensor.dir/io.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/io.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/tensor/CMakeFiles/darec_tensor.dir/matrix.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/matrix.cc.o.d"
  "/root/repo/src/tensor/mlp.cc" "src/tensor/CMakeFiles/darec_tensor.dir/mlp.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/mlp.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/tensor/CMakeFiles/darec_tensor.dir/ops.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/ops.cc.o.d"
  "/root/repo/src/tensor/optim.cc" "src/tensor/CMakeFiles/darec_tensor.dir/optim.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/optim.cc.o.d"
  "/root/repo/src/tensor/svd.cc" "src/tensor/CMakeFiles/darec_tensor.dir/svd.cc.o" "gcc" "src/tensor/CMakeFiles/darec_tensor.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/darec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
