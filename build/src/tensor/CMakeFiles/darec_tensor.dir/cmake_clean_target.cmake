file(REMOVE_RECURSE
  "libdarec_tensor.a"
)
