# Empty compiler generated dependencies file for darec_tensor.
# This may be replaced when dependencies are built.
