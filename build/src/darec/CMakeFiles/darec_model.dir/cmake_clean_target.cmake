file(REMOVE_RECURSE
  "libdarec_model.a"
)
