file(REMOVE_RECURSE
  "CMakeFiles/darec_model.dir/darec.cc.o"
  "CMakeFiles/darec_model.dir/darec.cc.o.d"
  "CMakeFiles/darec_model.dir/losses.cc.o"
  "CMakeFiles/darec_model.dir/losses.cc.o.d"
  "CMakeFiles/darec_model.dir/matching.cc.o"
  "CMakeFiles/darec_model.dir/matching.cc.o.d"
  "libdarec_model.a"
  "libdarec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
