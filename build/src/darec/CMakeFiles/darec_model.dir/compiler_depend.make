# Empty compiler generated dependencies file for darec_model.
# This may be replaced when dependencies are built.
