file(REMOVE_RECURSE
  "libdarec_pipeline.a"
)
