# Empty compiler generated dependencies file for darec_pipeline.
# This may be replaced when dependencies are built.
