file(REMOVE_RECURSE
  "CMakeFiles/darec_pipeline.dir/experiment.cc.o"
  "CMakeFiles/darec_pipeline.dir/experiment.cc.o.d"
  "CMakeFiles/darec_pipeline.dir/specs.cc.o"
  "CMakeFiles/darec_pipeline.dir/specs.cc.o.d"
  "CMakeFiles/darec_pipeline.dir/trainer.cc.o"
  "CMakeFiles/darec_pipeline.dir/trainer.cc.o.d"
  "libdarec_pipeline.a"
  "libdarec_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
