file(REMOVE_RECURSE
  "CMakeFiles/darec_eval.dir/metrics.cc.o"
  "CMakeFiles/darec_eval.dir/metrics.cc.o.d"
  "libdarec_eval.a"
  "libdarec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
