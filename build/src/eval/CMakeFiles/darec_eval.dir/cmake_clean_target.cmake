file(REMOVE_RECURSE
  "libdarec_eval.a"
)
