# Empty compiler generated dependencies file for darec_eval.
# This may be replaced when dependencies are built.
