file(REMOVE_RECURSE
  "CMakeFiles/darec_cf.dir/backbone.cc.o"
  "CMakeFiles/darec_cf.dir/backbone.cc.o.d"
  "CMakeFiles/darec_cf.dir/registry.cc.o"
  "CMakeFiles/darec_cf.dir/registry.cc.o.d"
  "libdarec_cf.a"
  "libdarec_cf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_cf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
