# Empty compiler generated dependencies file for darec_cf.
# This may be replaced when dependencies are built.
