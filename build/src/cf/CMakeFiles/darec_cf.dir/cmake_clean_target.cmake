file(REMOVE_RECURSE
  "libdarec_cf.a"
)
