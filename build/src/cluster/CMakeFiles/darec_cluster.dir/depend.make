# Empty dependencies file for darec_cluster.
# This may be replaced when dependencies are built.
