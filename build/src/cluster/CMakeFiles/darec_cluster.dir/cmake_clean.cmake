file(REMOVE_RECURSE
  "CMakeFiles/darec_cluster.dir/kmeans.cc.o"
  "CMakeFiles/darec_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/darec_cluster.dir/silhouette.cc.o"
  "CMakeFiles/darec_cluster.dir/silhouette.cc.o.d"
  "libdarec_cluster.a"
  "libdarec_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
