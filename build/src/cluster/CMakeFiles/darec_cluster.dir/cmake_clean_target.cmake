file(REMOVE_RECURSE
  "libdarec_cluster.a"
)
