
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_loader.cc" "src/data/CMakeFiles/darec_data.dir/csv_loader.cc.o" "gcc" "src/data/CMakeFiles/darec_data.dir/csv_loader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/darec_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/darec_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/presets.cc" "src/data/CMakeFiles/darec_data.dir/presets.cc.o" "gcc" "src/data/CMakeFiles/darec_data.dir/presets.cc.o.d"
  "/root/repo/src/data/sampler.cc" "src/data/CMakeFiles/darec_data.dir/sampler.cc.o" "gcc" "src/data/CMakeFiles/darec_data.dir/sampler.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/darec_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/darec_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/darec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/darec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
