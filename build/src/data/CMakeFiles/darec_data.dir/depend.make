# Empty dependencies file for darec_data.
# This may be replaced when dependencies are built.
