file(REMOVE_RECURSE
  "libdarec_data.a"
)
