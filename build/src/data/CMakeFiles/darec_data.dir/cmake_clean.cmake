file(REMOVE_RECURSE
  "CMakeFiles/darec_data.dir/csv_loader.cc.o"
  "CMakeFiles/darec_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/darec_data.dir/dataset.cc.o"
  "CMakeFiles/darec_data.dir/dataset.cc.o.d"
  "CMakeFiles/darec_data.dir/presets.cc.o"
  "CMakeFiles/darec_data.dir/presets.cc.o.d"
  "CMakeFiles/darec_data.dir/sampler.cc.o"
  "CMakeFiles/darec_data.dir/sampler.cc.o.d"
  "CMakeFiles/darec_data.dir/synthetic.cc.o"
  "CMakeFiles/darec_data.dir/synthetic.cc.o.d"
  "libdarec_data.a"
  "libdarec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
