file(REMOVE_RECURSE
  "libdarec_serve.a"
)
