file(REMOVE_RECURSE
  "CMakeFiles/darec_serve.dir/recommender.cc.o"
  "CMakeFiles/darec_serve.dir/recommender.cc.o.d"
  "libdarec_serve.a"
  "libdarec_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
