# Empty compiler generated dependencies file for darec_serve.
# This may be replaced when dependencies are built.
