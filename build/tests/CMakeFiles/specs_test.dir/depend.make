# Empty dependencies file for specs_test.
# This may be replaced when dependencies are built.
