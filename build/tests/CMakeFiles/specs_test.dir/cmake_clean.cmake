file(REMOVE_RECURSE
  "CMakeFiles/specs_test.dir/pipeline/specs_test.cc.o"
  "CMakeFiles/specs_test.dir/pipeline/specs_test.cc.o.d"
  "specs_test"
  "specs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
