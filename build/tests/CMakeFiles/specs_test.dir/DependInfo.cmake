
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline/specs_test.cc" "tests/CMakeFiles/specs_test.dir/pipeline/specs_test.cc.o" "gcc" "tests/CMakeFiles/specs_test.dir/pipeline/specs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/darec_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/darec_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/cf/CMakeFiles/darec_cf.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/darec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/darec/CMakeFiles/darec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/darec_align.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/darec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/darec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/darec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/darec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/darec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
