file(REMOVE_RECURSE
  "CMakeFiles/text_profile_test.dir/llm/text_profile_test.cc.o"
  "CMakeFiles/text_profile_test.dir/llm/text_profile_test.cc.o.d"
  "text_profile_test"
  "text_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
