# Empty compiler generated dependencies file for text_profile_test.
# This may be replaced when dependencies are built.
