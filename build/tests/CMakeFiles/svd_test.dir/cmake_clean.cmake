file(REMOVE_RECURSE
  "CMakeFiles/svd_test.dir/tensor/svd_test.cc.o"
  "CMakeFiles/svd_test.dir/tensor/svd_test.cc.o.d"
  "svd_test"
  "svd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
