# Empty dependencies file for svd_test.
# This may be replaced when dependencies are built.
