# Empty dependencies file for aligner_test.
# This may be replaced when dependencies are built.
