file(REMOVE_RECURSE
  "CMakeFiles/aligner_test.dir/align/aligner_test.cc.o"
  "CMakeFiles/aligner_test.dir/align/aligner_test.cc.o.d"
  "aligner_test"
  "aligner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aligner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
