# Empty compiler generated dependencies file for backbone_test.
# This may be replaced when dependencies are built.
