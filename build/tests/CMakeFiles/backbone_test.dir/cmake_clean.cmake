file(REMOVE_RECURSE
  "CMakeFiles/backbone_test.dir/cf/backbone_test.cc.o"
  "CMakeFiles/backbone_test.dir/cf/backbone_test.cc.o.d"
  "backbone_test"
  "backbone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
