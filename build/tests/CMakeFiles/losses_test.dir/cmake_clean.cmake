file(REMOVE_RECURSE
  "CMakeFiles/losses_test.dir/darec/losses_test.cc.o"
  "CMakeFiles/losses_test.dir/darec/losses_test.cc.o.d"
  "losses_test"
  "losses_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/losses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
