# Empty dependencies file for losses_test.
# This may be replaced when dependencies are built.
