file(REMOVE_RECURSE
  "CMakeFiles/logging_test.dir/core/logging_test.cc.o"
  "CMakeFiles/logging_test.dir/core/logging_test.cc.o.d"
  "logging_test"
  "logging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
