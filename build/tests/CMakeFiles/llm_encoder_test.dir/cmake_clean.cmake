file(REMOVE_RECURSE
  "CMakeFiles/llm_encoder_test.dir/llm/encoder_test.cc.o"
  "CMakeFiles/llm_encoder_test.dir/llm/encoder_test.cc.o.d"
  "llm_encoder_test"
  "llm_encoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
