file(REMOVE_RECURSE
  "CMakeFiles/tsne_test.dir/viz/tsne_test.cc.o"
  "CMakeFiles/tsne_test.dir/viz/tsne_test.cc.o.d"
  "tsne_test"
  "tsne_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsne_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
