# Empty dependencies file for tsne_test.
# This may be replaced when dependencies are built.
