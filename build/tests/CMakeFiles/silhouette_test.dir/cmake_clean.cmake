file(REMOVE_RECURSE
  "CMakeFiles/silhouette_test.dir/cluster/silhouette_test.cc.o"
  "CMakeFiles/silhouette_test.dir/cluster/silhouette_test.cc.o.d"
  "silhouette_test"
  "silhouette_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silhouette_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
