# Empty compiler generated dependencies file for sampler_test.
# This may be replaced when dependencies are built.
