file(REMOVE_RECURSE
  "CMakeFiles/darec_test.dir/darec/darec_test.cc.o"
  "CMakeFiles/darec_test.dir/darec/darec_test.cc.o.d"
  "darec_test"
  "darec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
