# Empty compiler generated dependencies file for darec_test.
# This may be replaced when dependencies are built.
