# Empty compiler generated dependencies file for mlp_test.
# This may be replaced when dependencies are built.
