file(REMOVE_RECURSE
  "CMakeFiles/synthetic_test.dir/data/synthetic_test.cc.o"
  "CMakeFiles/synthetic_test.dir/data/synthetic_test.cc.o.d"
  "synthetic_test"
  "synthetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
