# Empty dependencies file for csr_test.
# This may be replaced when dependencies are built.
