# Empty dependencies file for bipartite_test.
# This may be replaced when dependencies are built.
