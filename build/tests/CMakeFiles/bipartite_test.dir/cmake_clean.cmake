file(REMOVE_RECURSE
  "CMakeFiles/bipartite_test.dir/graph/bipartite_test.cc.o"
  "CMakeFiles/bipartite_test.dir/graph/bipartite_test.cc.o.d"
  "bipartite_test"
  "bipartite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
