file(REMOVE_RECURSE
  "CMakeFiles/csv_loader_test.dir/data/csv_loader_test.cc.o"
  "CMakeFiles/csv_loader_test.dir/data/csv_loader_test.cc.o.d"
  "csv_loader_test"
  "csv_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
