file(REMOVE_RECURSE
  "CMakeFiles/ops_property_test.dir/tensor/ops_property_test.cc.o"
  "CMakeFiles/ops_property_test.dir/tensor/ops_property_test.cc.o.d"
  "ops_property_test"
  "ops_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
