file(REMOVE_RECURSE
  "CMakeFiles/matching_test.dir/darec/matching_test.cc.o"
  "CMakeFiles/matching_test.dir/darec/matching_test.cc.o.d"
  "matching_test"
  "matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
