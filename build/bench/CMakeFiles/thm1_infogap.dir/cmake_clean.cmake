file(REMOVE_RECURSE
  "CMakeFiles/thm1_infogap.dir/thm1_infogap.cc.o"
  "CMakeFiles/thm1_infogap.dir/thm1_infogap.cc.o.d"
  "thm1_infogap"
  "thm1_infogap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm1_infogap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
