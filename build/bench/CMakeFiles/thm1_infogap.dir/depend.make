# Empty dependencies file for thm1_infogap.
# This may be replaced when dependencies are built.
