file(REMOVE_RECURSE
  "../lib/libdarec_bench_util.a"
  "../lib/libdarec_bench_util.pdb"
  "CMakeFiles/darec_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/darec_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darec_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
