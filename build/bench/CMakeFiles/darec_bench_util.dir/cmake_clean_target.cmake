file(REMOVE_RECURSE
  "../lib/libdarec_bench_util.a"
)
