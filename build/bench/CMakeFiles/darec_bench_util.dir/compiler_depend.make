# Empty compiler generated dependencies file for darec_bench_util.
# This may be replaced when dependencies are built.
