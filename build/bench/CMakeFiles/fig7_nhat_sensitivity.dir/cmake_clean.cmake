file(REMOVE_RECURSE
  "CMakeFiles/fig7_nhat_sensitivity.dir/fig7_nhat_sensitivity.cc.o"
  "CMakeFiles/fig7_nhat_sensitivity.dir/fig7_nhat_sensitivity.cc.o.d"
  "fig7_nhat_sensitivity"
  "fig7_nhat_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_nhat_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
