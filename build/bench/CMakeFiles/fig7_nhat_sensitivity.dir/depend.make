# Empty dependencies file for fig7_nhat_sensitivity.
# This may be replaced when dependencies are built.
