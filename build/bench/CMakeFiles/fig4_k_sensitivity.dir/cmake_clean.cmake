file(REMOVE_RECURSE
  "CMakeFiles/fig4_k_sensitivity.dir/fig4_k_sensitivity.cc.o"
  "CMakeFiles/fig4_k_sensitivity.dir/fig4_k_sensitivity.cc.o.d"
  "fig4_k_sensitivity"
  "fig4_k_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_k_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
