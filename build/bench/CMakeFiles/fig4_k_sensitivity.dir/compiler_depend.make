# Empty compiler generated dependencies file for fig4_k_sensitivity.
# This may be replaced when dependencies are built.
