# Empty dependencies file for table4_llm_enhanced.
# This may be replaced when dependencies are built.
