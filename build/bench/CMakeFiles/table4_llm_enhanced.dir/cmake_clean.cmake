file(REMOVE_RECURSE
  "CMakeFiles/table4_llm_enhanced.dir/table4_llm_enhanced.cc.o"
  "CMakeFiles/table4_llm_enhanced.dir/table4_llm_enhanced.cc.o.d"
  "table4_llm_enhanced"
  "table4_llm_enhanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_llm_enhanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
