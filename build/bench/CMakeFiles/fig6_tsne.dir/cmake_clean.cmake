file(REMOVE_RECURSE
  "CMakeFiles/fig6_tsne.dir/fig6_tsne.cc.o"
  "CMakeFiles/fig6_tsne.dir/fig6_tsne.cc.o.d"
  "fig6_tsne"
  "fig6_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
