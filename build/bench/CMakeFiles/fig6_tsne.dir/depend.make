# Empty dependencies file for fig6_tsne.
# This may be replaced when dependencies are built.
