# Empty dependencies file for table3_main.
# This may be replaced when dependencies are built.
