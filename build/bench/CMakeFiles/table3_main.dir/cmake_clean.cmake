file(REMOVE_RECURSE
  "CMakeFiles/table3_main.dir/table3_main.cc.o"
  "CMakeFiles/table3_main.dir/table3_main.cc.o.d"
  "table3_main"
  "table3_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
