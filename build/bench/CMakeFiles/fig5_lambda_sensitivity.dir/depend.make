# Empty dependencies file for fig5_lambda_sensitivity.
# This may be replaced when dependencies are built.
