file(REMOVE_RECURSE
  "CMakeFiles/fig5_lambda_sensitivity.dir/fig5_lambda_sensitivity.cc.o"
  "CMakeFiles/fig5_lambda_sensitivity.dir/fig5_lambda_sensitivity.cc.o.d"
  "fig5_lambda_sensitivity"
  "fig5_lambda_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lambda_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
