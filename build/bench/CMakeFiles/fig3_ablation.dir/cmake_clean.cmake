file(REMOVE_RECURSE
  "CMakeFiles/fig3_ablation.dir/fig3_ablation.cc.o"
  "CMakeFiles/fig3_ablation.dir/fig3_ablation.cc.o.d"
  "fig3_ablation"
  "fig3_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
