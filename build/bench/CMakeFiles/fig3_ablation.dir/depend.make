# Empty dependencies file for fig3_ablation.
# This may be replaced when dependencies are built.
