# Empty dependencies file for micro_losses.
# This may be replaced when dependencies are built.
