file(REMOVE_RECURSE
  "CMakeFiles/micro_losses.dir/micro_losses.cc.o"
  "CMakeFiles/micro_losses.dir/micro_losses.cc.o.d"
  "micro_losses"
  "micro_losses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_losses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
