# Empty compiler generated dependencies file for ablation_infogap.
# This may be replaced when dependencies are built.
