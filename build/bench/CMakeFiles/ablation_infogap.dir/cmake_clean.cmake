file(REMOVE_RECURSE
  "CMakeFiles/ablation_infogap.dir/ablation_infogap.cc.o"
  "CMakeFiles/ablation_infogap.dir/ablation_infogap.cc.o.d"
  "ablation_infogap"
  "ablation_infogap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_infogap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
