file(REMOVE_RECURSE
  "CMakeFiles/serve_recommendations.dir/serve_recommendations.cpp.o"
  "CMakeFiles/serve_recommendations.dir/serve_recommendations.cpp.o.d"
  "serve_recommendations"
  "serve_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
