# Empty compiler generated dependencies file for serve_recommendations.
# This may be replaced when dependencies are built.
