file(REMOVE_RECURSE
  "CMakeFiles/plug_and_play.dir/plug_and_play.cpp.o"
  "CMakeFiles/plug_and_play.dir/plug_and_play.cpp.o.d"
  "plug_and_play"
  "plug_and_play.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plug_and_play.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
