# Empty dependencies file for plug_and_play.
# This may be replaced when dependencies are built.
