file(REMOVE_RECURSE
  "CMakeFiles/preference_centers.dir/preference_centers.cpp.o"
  "CMakeFiles/preference_centers.dir/preference_centers.cpp.o.d"
  "preference_centers"
  "preference_centers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_centers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
