# Empty compiler generated dependencies file for preference_centers.
# This may be replaced when dependencies are built.
