# Empty compiler generated dependencies file for theorem1_demo.
# This may be replaced when dependencies are built.
