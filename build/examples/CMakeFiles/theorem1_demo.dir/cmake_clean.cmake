file(REMOVE_RECURSE
  "CMakeFiles/theorem1_demo.dir/theorem1_demo.cpp.o"
  "CMakeFiles/theorem1_demo.dir/theorem1_demo.cpp.o.d"
  "theorem1_demo"
  "theorem1_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
