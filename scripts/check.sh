#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then a ThreadSanitizer
# pass over the parallel runtime (thread pool + blocked/threaded kernels).
#
# Usage: scripts/check.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "=== tier-1: Release build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== smoke: batched top-K bench (1 repetition, bitwise parity gates) ==="
cmake --build build -j "$(nproc)" --target topk_bench >/dev/null
./build/bench/topk_bench smoke=1 out=build/BENCH_topk_smoke.json

if [[ "$run_tsan" == 1 ]]; then
  echo "=== TSan: thread pool + parallel kernels + top-K engine ==="
  cmake -B build-tsan -S . -DDAREC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target thread_pool_test parallel_kernels_test topk_engine_test \
             kmeans_test >/dev/null
  ctest --test-dir build-tsan --output-on-failure \
    -R 'thread_pool_test|parallel_kernels_test|topk_engine_test|kmeans_test'
fi

echo "=== all checks passed ==="
