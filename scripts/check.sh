#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then an AddressSanitizer
# pass over the fault-tolerance surface (checkpointing, fail-point injection,
# corrupted-file parsing) and a ThreadSanitizer pass over the parallel
# runtime (thread pool + blocked/threaded kernels) and the crash/resume path.
#
# Usage: scripts/check.sh [--no-asan] [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
run_tsan=1
for arg in "$@"; do
  [[ "$arg" == "--no-asan" ]] && run_asan=0
  [[ "$arg" == "--no-tsan" ]] && run_tsan=0
done

echo "=== tier-1: Release build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== smoke: batched top-K bench (1 repetition, bitwise parity gates) ==="
cmake --build build -j "$(nproc)" --target topk_bench >/dev/null
./build/bench/topk_bench smoke=1 out=build/BENCH_topk_smoke.json

if [[ "$run_asan" == 1 ]]; then
  echo "=== ASan: checkpointing + fail points + corrupted-file parsing ==="
  cmake -B build-asan -S . -DDAREC_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$(nproc)" \
    --target failpoint_test checkpoint_test io_corruption_test io_test \
             trainer_ckpt_test >/dev/null
  ctest --test-dir build-asan --output-on-failure \
    -R 'failpoint_test|checkpoint_test|io_corruption_test|io_test|trainer_ckpt_test'
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== TSan: thread pool + parallel kernels + top-K engine + crash/resume ==="
  cmake -B build-tsan -S . -DDAREC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target thread_pool_test parallel_kernels_test topk_engine_test \
             kmeans_test failpoint_test trainer_ckpt_test >/dev/null
  ctest --test-dir build-tsan --output-on-failure \
    -R 'thread_pool_test|parallel_kernels_test|topk_engine_test|kmeans_test|failpoint_test|trainer_ckpt_test'
fi

echo "=== all checks passed ==="
