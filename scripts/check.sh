#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, a checkpoint-aware bench
# resume smoke (kill a sweep mid-run, rerun with resume=1, final metrics must
# match an uninterrupted run), then an AddressSanitizer pass over the
# fault-tolerance surface (checkpointing, fail-point injection,
# corrupted-file parsing) and the arena/workspace memory model, and a
# ThreadSanitizer pass over the parallel runtime (thread pool +
# blocked/threaded kernels), the staged train loop (crash/resume, policies,
# observers), the data-parallel step executor (8-worker super-steps) and
# concurrent workspace acquire/release, and the online serving tier
# (multi-producer microbatch queue with mid-flight snapshot swaps, bounded
# admission + degradation ladder + request deadlines). A forced
# DAREC_SIMD=scalar ctest lane and train_bench/serve_bench smokes guard the
# runtime-dispatched SIMD kernels (fp32 and int8); a DAREC_FUSION=off lane
# and a parity-gated fusion bench smoke guard expression fusion (both
# evaluation paths must stay bitwise identical). A data_bench smoke
# generates a multi-shard web_scale catalog and gates the streamed
# (memory-mapped) data path bitwise against the resident one.
#
# Usage: scripts/check.sh [--no-asan] [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
run_tsan=1
for arg in "$@"; do
  [[ "$arg" == "--no-asan" ]] && run_asan=0
  [[ "$arg" == "--no-tsan" ]] && run_tsan=0
done

echo "=== tier-1: Release build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== smoke: batched top-K bench (1 repetition, bitwise parity gates) ==="
cmake --build build -j "$(nproc)" --target topk_bench >/dev/null
./build/bench/topk_bench smoke=1 out=build/BENCH_topk_smoke.json

echo "=== smoke: autograd memory profile (steady-state allocations) ==="
cmake --build build -j "$(nproc)" --target micro_losses >/dev/null
./build/bench/micro_losses --alloc_json=build/BENCH_autograd_smoke.json

echo "=== smoke: fused loss chains (fused vs eager, bitwise parity gates) ==="
./build/bench/micro_losses --fusion_json=build/BENCH_fusion_smoke.json

echo "=== smoke: train bench (workers x SIMD sweep, bitwise parity gates) ==="
cmake --build build -j "$(nproc)" --target train_bench >/dev/null
./build/bench/train_bench datasets=tiny epochs=2 workers=1,8 \
  out=build/BENCH_train_smoke.json

echo "=== smoke: data bench (web_scale shards, streamed vs resident parity) ==="
cmake --build build -j "$(nproc)" --target data_bench >/dev/null
# Generates a downscaled multi-shard web_scale catalog, streams BPR epochs
# off the memory-mapped shards, and hard-fails on any bitwise drift between
# the streamed and resident data paths.
./build/bench/data_bench users=20000 items=5000 epochs=1 \
  out=build/BENCH_data_smoke.json

echo "=== smoke: serve bench (microbatched queue, fp32/int8 parity gates) ==="
cmake --build build -j "$(nproc)" --target serve_bench >/dev/null
./build/bench/serve_bench smoke=1 out=build/BENCH_serve_smoke.json

echo "=== smoke: overload ladder (fail-point-stalled flush walks all 3 states) ==="
# serve.slow_flush stalls the first flush 300ms; the burst of submissions
# deterministically climbs the queue through degrade_enter and shed_enter,
# then drains back to Healthy. Asserted inside the binary (DARE_CHECKs).
DAREC_FAILPOINTS=serve.slow_flush=300000:1 \
  ./build/bench/serve_bench overload_smoke=1

echo "=== ctest under DAREC_SIMD=scalar (forced lowest kernel tier) ==="
# quant_test exercises the int8 score/dequant kernels' naive-reference
# parity on the scalar tier as well as the dispatched one.
DAREC_SIMD=scalar ctest --test-dir build --output-on-failure \
  -R 'matrix_test|ops_property_test|cpu_features_test|golden_trace_test|parallel_executor_test|quant_test'

echo "=== ctest under DAREC_FUSION=off (every recorded chain replayed) ==="
# The replay path must carry the same golden traces, property contracts, and
# steady-state allocation budget as the fused default.
DAREC_FUSION=off ctest --test-dir build --output-on-failure \
  -R 'expr_test|ops_property_test|losses_test|golden_trace_test|alloc_regression_test'

echo "=== smoke: bench resume (kill table3_main mid-sweep, rerun resume=1) ==="
cmake --build build -j "$(nproc)" --target table3_main >/dev/null
smoke_args=(datasets=tiny backbones=lightgcn epochs=60 checkpoint_every=1)
resume_dir=build/bench_resume_smoke
rm -rf "$resume_dir"
./build/bench/table3_main "${smoke_args[@]}" \
  | grep -v 'completed in' > "$resume_dir.full.txt"
# Kill the checkpointed sweep partway through (it takes ~1s), then resume
# it. Resume from any epoch boundary is bit-exact and unstarted cells train
# from scratch, so the final table must match the uninterrupted run wherever
# the kill lands.
timeout --signal=KILL 0.3 \
  ./build/bench/table3_main "${smoke_args[@]}" checkpoint_dir="$resume_dir" \
  > /dev/null || true
./build/bench/table3_main "${smoke_args[@]}" checkpoint_dir="$resume_dir" \
  resume=1 | grep -v 'completed in' > "$resume_dir.resumed.txt"
# Wall-time footers are stripped; every metric row must be identical.
diff "$resume_dir.full.txt" "$resume_dir.resumed.txt"
rm -rf "$resume_dir" "$resume_dir.full.txt" "$resume_dir.resumed.txt"
echo "resume smoke: final tables identical"

if [[ "$run_asan" == 1 ]]; then
  echo "=== ASan: checkpointing + fail points + corrupted-file parsing ==="
  cmake -B build-asan -S . -DDAREC_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$(nproc)" \
    --target failpoint_test checkpoint_test io_corruption_test io_test \
             trainer_ckpt_test workspace_test graph_context_test \
             alloc_regression_test backoff_test overload_test \
             shards_test web_scale_test sharded_checkpoint_test \
             interactions_test >/dev/null
  # overload_test under ASan covers the fail-point-injected flush stalls and
  # failures (expired-promise and degraded-batch memory handling).
  # shards_test/sharded_checkpoint_test replay the bit-flip and truncation
  # sweeps over the mmap'd shard + manifest parsers under ASan, where an
  # out-of-bounds read caused by a corrupted length field would trap.
  ctest --test-dir build-asan --output-on-failure \
    -R 'failpoint_test|checkpoint_test|io_corruption_test|io_test|trainer_ckpt_test|workspace_test|graph_context_test|alloc_regression_test|backoff_test|overload_test|shards_test|web_scale_test|sharded_checkpoint_test|interactions_test'
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== TSan: thread pool + parallel kernels + top-K engine + crash/resume ==="
  cmake -B build-tsan -S . -DDAREC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target thread_pool_test parallel_kernels_test topk_engine_test \
             kmeans_test failpoint_test trainer_ckpt_test \
             train_policies_test train_observer_test workspace_test \
             parallel_executor_test cpu_features_test quant_test \
             server_test overload_test sharded_checkpoint_test >/dev/null
  # parallel_executor_test drives 8-worker super-steps (GradSink diversion,
  # fixed-order reduction, per-slot aligner state) under TSan. server_test's
  # hammers run multi-producer submits against the microbatch flusher with
  # snapshot swaps mid-flight and Stop() racing deadline-carrying submits;
  # overload_test adds bounded admission, the degradation ladder, and
  # SubmitWithRetry under the same flusher. sharded_checkpoint_test runs the
  # parallel per-section checkpoint I/O (writes and reads on the global
  # pool) under TSan, including the 1-vs-8-thread byte-parity sweep.
  ctest --test-dir build-tsan --output-on-failure \
    -R 'thread_pool_test|parallel_kernels_test|topk_engine_test|kmeans_test|failpoint_test|trainer_ckpt_test|train_policies_test|train_observer_test|workspace_test|parallel_executor_test|cpu_features_test|quant_test|server_test|overload_test|sharded_checkpoint_test'
fi

echo "=== all checks passed ==="
