// Preference-center analysis (the paper's RQ4): trains DaRec, clusters the
// shared representations of both modalities into K preference centers,
// runs the adaptive center matching of Eq. 7-8, and prints the matched
// center similarities — showing that the same user-interest structure
// lives in both the collaborative and the LLM shared space.
//
// Usage:
//   preference_centers [dataset=amazon-book-small] [k=4] [epochs=40]
//                      [tsne_csv=]  (set a path prefix to also dump t-SNE)
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/silhouette.h"
#include "core/config.h"
#include "darec/matching.h"
#include "pipeline/experiment.h"
#include "pipeline/specs.h"
#include "tensor/matrix.h"
#include "viz/tsne.h"

int main(int argc, char** argv) {
  using namespace darec;
  std::vector<std::string> args(argv + 1, argv + argc);
  auto config = core::Config::FromArgs(args);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const std::string dataset = config->GetString("dataset", "amazon-book-small");
  const int64_t k = config->GetInt("k", 4);

  pipeline::ExperimentSpec spec =
      pipeline::CalibratedSpec(dataset, "lightgcn", "darec");
  pipeline::ApplyConfigOverrides(*config, &spec);
  spec.darec_options.num_clusters = k;
  auto experiment = pipeline::Experiment::Create(spec);
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("training lightgcn+darec on %s ...\n", dataset.c_str());
  pipeline::TrainResult result = (*experiment)->Run();
  std::printf("test metrics: %s\n", result.test_metrics.ToString().c_str());

  // Project all nodes into the shared spaces and cluster each modality.
  model::DisentangledViews views =
      (*experiment)->darec()->Project(result.final_embeddings);
  core::Rng rng(3);
  cluster::KMeansOptions kopts;
  kopts.num_clusters = k;
  tensor::Matrix cf_shared = tensor::RowNormalize(views.cf_shared.value());
  tensor::Matrix llm_shared = tensor::RowNormalize(views.llm_shared.value());
  cluster::KMeansResult cf = cluster::RunKMeans(cf_shared, kopts, rng);
  cluster::KMeansResult llm = cluster::RunKMeans(llm_shared, kopts, rng);

  // Adaptive preference matching (Eq. 7-8) and matched-center cosines.
  tensor::Matrix dist = model::CenterDistances(cf.centers, llm.centers);
  model::CenterMatching matching = model::GreedyMatchCenters(dist);
  tensor::Matrix cf_norm = tensor::RowNormalize(cf.centers);
  tensor::Matrix llm_norm = tensor::RowNormalize(llm.centers);
  std::printf("\npreference centers (K=%lld), matched via Eq. 7-8:\n", (long long)k);
  std::printf("  %-10s %-10s %10s %12s %12s\n", "cf-center", "llm-center",
              "cosine", "|cf cluster|", "|llm cluster|");
  for (size_t pair = 0; pair < matching.left.size(); ++pair) {
    const int64_t i = matching.left[pair];
    const int64_t j = matching.right[pair];
    double cosine = 0.0;
    for (int64_t c = 0; c < cf_norm.cols(); ++c) {
      cosine += double(cf_norm(i, c)) * llm_norm(j, c);
    }
    int64_t cf_size = 0, llm_size = 0;
    for (int64_t a : cf.assignments) cf_size += (a == i);
    for (int64_t a : llm.assignments) llm_size += (a == j);
    std::printf("  %-10lld %-10lld %10.4f %12lld %12lld\n", (long long)i,
                (long long)j, cosine, (long long)cf_size, (long long)llm_size);
  }

  // Cluster quality: silhouette on a subsample (exact O(N²) metric).
  std::vector<int64_t> quality_sample = rng.SampleWithoutReplacement(
      cf_shared.rows(), std::min<int64_t>(500, cf_shared.rows()));
  tensor::Matrix cf_sub(quality_sample.size(), cf_shared.cols());
  std::vector<int64_t> cf_sub_labels;
  for (size_t i = 0; i < quality_sample.size(); ++i) {
    cf_sub.CopyRowFrom(cf_shared, quality_sample[i], static_cast<int64_t>(i));
    cf_sub_labels.push_back(cf.assignments[quality_sample[i]]);
  }
  std::printf("\nCF shared-space silhouette (K=%lld, %zu nodes): %.3f\n",
              (long long)k, quality_sample.size(),
              cluster::MeanSilhouette(cf_sub, cf_sub_labels));

  const std::string tsne_prefix = config->GetString("tsne_csv", "");
  if (!tsne_prefix.empty()) {
    // Subsample for t-SNE (exact O(N²) implementation).
    std::vector<int64_t> sample = rng.SampleWithoutReplacement(
        cf_shared.rows(), std::min<int64_t>(600, cf_shared.rows()));
    tensor::Matrix cf_points(sample.size(), cf_shared.cols());
    std::vector<int64_t> labels;
    for (size_t i = 0; i < sample.size(); ++i) {
      cf_points.CopyRowFrom(cf_shared, sample[i], static_cast<int64_t>(i));
      labels.push_back(cf.assignments[sample[i]]);
    }
    tensor::Matrix embedding = viz::RunTsne(cf_points, viz::TsneOptions{});
    auto status =
        viz::WriteEmbeddingCsv(tsne_prefix + "_cf_shared.csv", embedding, labels);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s_cf_shared.csv\n", tsne_prefix.c_str());
  }
  return 0;
}
