// Downstream-adoption walkthrough: train LightGCN+DaRec, persist the
// embeddings, reload them into the serving facade, and answer top-K and
// similar-item queries — the full production loop a consumer of this
// library would run.
//
// Usage:
//   serve_recommendations [dataset=amazon-book-small] [epochs=25] [k=10]
//                         [embeddings_path=/tmp/darec_embeddings.dmat]
#include <cstdio>
#include <string>
#include <vector>

#include "core/config.h"
#include "pipeline/experiment.h"
#include "pipeline/specs.h"
#include "serve/recommender.h"
#include "tensor/io.h"

int main(int argc, char** argv) {
  using namespace darec;
  std::vector<std::string> args(argv + 1, argv + argc);
  auto config = core::Config::FromArgs(args);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int64_t k = config->GetInt("k", 10);
  const std::string path =
      config->GetString("embeddings_path", "/tmp/darec_embeddings.dmat");

  // 1. Train.
  pipeline::ExperimentSpec spec = pipeline::CalibratedSpec(
      config->GetString("dataset", "amazon-book-small"), "lightgcn", "darec");
  spec.train_options.epochs = config->GetInt("epochs", 25);
  pipeline::ApplyConfigOverrides(*config, &spec);
  auto experiment = pipeline::Experiment::Create(spec);
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("training lightgcn+darec on %s ...\n", spec.dataset.c_str());
  pipeline::TrainResult result = (*experiment)->Run();
  std::printf("trained: %s (%.1fs)\n", result.test_metrics.ToString().c_str(),
              result.train_seconds);

  // 2. Persist the embeddings (what a training job would ship).
  auto save = tensor::SaveMatrix(path, result.final_embeddings);
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("saved embeddings to %s (%lldx%lld float32)\n", path.c_str(),
              (long long)result.final_embeddings.rows(),
              (long long)result.final_embeddings.cols());

  // 3. Load into the serving facade (what an online service would do).
  auto recommender = serve::Recommender::Load(path, &(*experiment)->dataset());
  if (!recommender.ok()) {
    std::fprintf(stderr, "%s\n", recommender.status().ToString().c_str());
    return 1;
  }

  // 4. Answer queries for a few users.
  for (int64_t user : {0, 1, 2}) {
    auto top = recommender->RecommendTopK(user, k);
    if (!top.ok()) {
      std::fprintf(stderr, "%s\n", top.status().ToString().c_str());
      return 1;
    }
    std::printf("user %lld top-%lld:", (long long)user, (long long)k);
    for (const serve::ScoredItem& s : *top) {
      std::printf(" %lld(%.2f)", (long long)s.item, s.score);
    }
    std::printf("\n");
  }

  // 5. "Customers also liked" for the first user's first recommendation.
  auto first = recommender->RecommendTopK(0, 1);
  if (first.ok() && !first->empty()) {
    auto similar = recommender->SimilarItems((*first)[0].item, 5);
    if (similar.ok()) {
      std::printf("items similar to %lld:", (long long)(*first)[0].item);
      for (const serve::ScoredItem& s : *similar) {
        std::printf(" %lld(cos %.2f)", (long long)s.item, s.score);
      }
      std::printf("\n");
    }
  }
  return 0;
}
