// Plug-and-play demo: attach the same DaRec aligner configuration to
// several different collaborative-filtering backbones and report the
// improvement each one gets — the paper's headline claim is that DaRec is
// backbone-agnostic.
//
// Usage:
//   plug_and_play [dataset=amazon-book-small]
//                 [backbones=gccf,lightgcn,autocf] [epochs=40]
#include <cstdio>
#include <string>
#include <vector>

#include "core/config.h"
#include "pipeline/experiment.h"
#include "pipeline/specs.h"

int main(int argc, char** argv) {
  using namespace darec;
  std::vector<std::string> args(argv + 1, argv + argc);
  auto config = core::Config::FromArgs(args);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const std::string dataset = config->GetString("dataset", "amazon-book-small");
  std::string backbones_csv = config->GetString("backbones", "gccf,lightgcn,autocf");

  std::printf("== DaRec as a plug-and-play aligner (%s) ==\n", dataset.c_str());
  std::printf("%-10s %14s %14s %12s\n", "backbone", "base R@20", "+DaRec R@20",
              "improvement");

  size_t start = 0;
  while (start <= backbones_csv.size()) {
    size_t comma = backbones_csv.find(',', start);
    if (comma == std::string::npos) comma = backbones_csv.size();
    const std::string backbone = backbones_csv.substr(start, comma - start);
    start = comma + 1;
    if (backbone.empty()) continue;

    double scores[2] = {0.0, 0.0};
    int slot = 0;
    for (const std::string& variant : {std::string("baseline"), std::string("darec")}) {
      pipeline::ExperimentSpec spec =
          pipeline::CalibratedSpec(dataset, backbone, variant);
      pipeline::ApplyConfigOverrides(*config, &spec);
      spec.dataset = dataset;
      spec.backbone = backbone;
      spec.variant = variant;
      auto result = pipeline::RunExperiment(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      scores[slot++] = result->test_metrics.recall.at(20);
    }
    std::printf("%-10s %14.4f %14.4f %+11.2f%%\n", backbone.c_str(), scores[0],
                scores[1], 100.0 * (scores[1] - scores[0]) / scores[0]);
  }
  return 0;
}
