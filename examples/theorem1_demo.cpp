// Theorem 1 walkthrough on a toy world you can reason about by hand:
// Y is a fair coin, the CF input D observes it through a clean channel, the
// LLM input D' through a noisy one. Exactly aligning the two
// representations forces them onto the information both sides share — and
// costs at least the information gap Δp in downstream risk.
//
// Usage: theorem1_demo [d_noise=0.05] [dp_noise=0.3] [coupling=0.0]
#include <cstdio>
#include <string>
#include <vector>

#include "core/config.h"
#include "theory/info.h"
#include "theory/theorem1.h"

int main(int argc, char** argv) {
  using namespace darec;
  std::vector<std::string> args(argv + 1, argv + argc);
  auto config = core::Config::FromArgs(args);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  theory::DiscreteWorldOptions options;
  options.d_noise = config->GetDouble("d_noise", 0.05);
  options.dp_noise = config->GetDouble("dp_noise", 0.3);
  options.coupling = config->GetDouble("coupling", 0.0);

  theory::DiscreteWorld world = theory::MakeDiscreteWorld(options);
  theory::Theorem1Result result = theory::VerifyTheorem1(world, 2);

  std::printf("== Theorem 1 demo (all quantities in nats) ==\n");
  std::printf("world: Y ~ fair coin; D sees Y with %.0f%% error;"
              " D' with %.0f%% error; coupling=%.2f\n",
              100 * options.d_noise, 100 * options.dp_noise, options.coupling);
  std::printf("\n  I(D ; Y)  = %.4f   (CF-side relevant information)\n",
              result.info_d_y);
  std::printf("  I(D'; Y)  = %.4f   (LLM-side relevant information)\n",
              result.info_dp_y);
  std::printf("  delta_p   = %.4f   (the information gap, Eq. before Thm. 1)\n",
              result.delta_p);
  std::printf("\n  H(Y | D, D')          = %.4f  (unconstrained Bayes risk)\n",
              result.h_y_given_inputs);
  std::printf("  min aligned H(Y | E)  = %.4f  (best EXACTLY aligned encoders)\n",
              result.best_aligned_risk);
  std::printf("  excess risk           = %.4f\n", result.excess_risk);
  std::printf("\n  Theorem 1 claims excess >= delta_p: %s (%.4f >= %.4f)\n",
              result.bound_holds ? "HOLDS" : "VIOLATED", result.excess_risk,
              result.delta_p);
  std::printf("\nTakeaway: when the modalities are far apart (low coupling, high\n"
              "dp_noise), forcing E^C == E^L throws away information that only\n"
              "one side has. DaRec's answer: align only the shared component.\n");
  return result.bound_holds ? 0 : 1;
}
