// Quickstart: plug DaRec onto a LightGCN backbone and compare against the
// plain baseline on a synthetic Amazon-book-scale dataset.
//
// Usage:
//   quickstart [dataset=amazon-book-small] [epochs=40] [seed=7]
//              [lambda=0.5] [k=4] [n_hat=256] ...
#include <cstdio>
#include <string>
#include <vector>

#include "core/config.h"
#include "pipeline/experiment.h"
#include "pipeline/observer.h"
#include "pipeline/specs.h"

namespace {

using darec::pipeline::TrainResult;

void PrintResult(const std::string& label, const TrainResult& result) {
  std::printf("%-18s R@5=%.4f R@10=%.4f R@20=%.4f N@5=%.4f N@10=%.4f N@20=%.4f"
              "  (%.1fs)\n",
              label.c_str(), result.test_metrics.recall.at(5),
              result.test_metrics.recall.at(10), result.test_metrics.recall.at(20),
              result.test_metrics.ndcg.at(5), result.test_metrics.ndcg.at(10),
              result.test_metrics.ndcg.at(20), result.train_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace darec;
  std::vector<std::string> args(argv + 1, argv + argc);
  auto config = core::Config::FromArgs(args);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  std::printf("== DaRec quickstart ==\n");
  const std::vector<std::string> variants{"baseline", "darec"};
  for (const std::string& variant : variants) {
    pipeline::ExperimentSpec spec = pipeline::CalibratedSpec(
        config->GetString("dataset", "amazon-book-small"),
        config->GetString("backbone", "lightgcn"), variant);
    pipeline::ApplyConfigOverrides(*config, &spec);
    spec.variant = variant;
    auto experiment = pipeline::Experiment::Create(spec);
    if (!experiment.ok()) {
      std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
      return 1;
    }
    if (variant == "baseline") {
      std::printf("dataset: %s\n", (*experiment)->dataset().Summary().c_str());
    }
    // Tap the train loop with a metrics observer: losses, timings and
    // checkpoint activity accumulate into a snapshot without touching the
    // training numerics.
    pipeline::MetricsObserver metrics;
    TrainResult result = (*experiment)->Run(&metrics);
    PrintResult(spec.backbone + "+" + variant, result);
    const pipeline::TrainMetricsSnapshot snapshot = metrics.Snapshot();
    if (!snapshot.epoch_losses.empty()) {
      std::printf("  epochs=%lld steps=%lld first-loss=%.4f last-loss=%.4f\n",
                  (long long)snapshot.epochs_completed,
                  (long long)snapshot.steps_applied, snapshot.epoch_losses.front(),
                  snapshot.epoch_losses.back());
    }
  }
  return 0;
}
